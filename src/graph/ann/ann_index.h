// Approximate-nearest-neighbor candidate retrieval over embedding rows
// (DESIGN.md §11) — the sublinear answer to the O(n1 * n2 * d) similarity
// wall (ROADMAP item 2).
//
// An AnnIndex is built once over the n2 "base" rows (target-side
// embeddings) and then answers batched inner-product top-k queries in
// sublinear time per query: O(probed candidates) for the multi-table
// cosine-LSH backend, O(ef * degree * log n) for the HNSW-style navigable
// graph. Both backends:
//
//   * are deterministic given the config seed — construction draws from a
//     seeded Rng, queries are pure functions of the index — so ANN-vs-exact
//     recall comparisons are reproducible across runs and thread counts;
//   * reserve their footprint against ctx.budget() (EstimateAnnIndexBytes
//     + MemoryScope, the PR-4 admission contract) and allocate through
//     Matrix::TryCreate, degrading to ResourceExhausted instead of
//     bad_alloc;
//   * honor RunContext deadlines/cancellation: an expired build returns a
//     truncated-but-valid index over the rows inserted so far, an expired
//     query batch returns the leading rows computed so far
//     (rows_computed < rows), mirroring the ChunkedTopK wind-down contract.
//
// Results come back as TopKAlignment — the same compressed per-row top-k
// the chunked exact path produces — so every consumer (anchor extraction,
// ComputeMetricsTopK, stability refinement) works unchanged on retrieved
// candidate sets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/run_context.h"
#include "common/status.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {

/// Which retrieval structure backs the index.
enum class AnnBackend {
  kLsh,   ///< signed-random-projection cosine LSH, multi-table + multiprobe
  kHnsw,  ///< HNSW-style navigable small-world graph on a CSR layout
};

/// Whether AlignTopK routes through the ANN layer.
enum class AnnMode {
  kAuto,  ///< ANN above the size threshold, exact below (the default)
  kOn,    ///< always route through the index (tests / benches)
  kOff,   ///< always exact
};

/// \brief Tuning knobs shared by both backends.
///
/// The defaults favor recall over speed (the recall property test holds
/// both backends to >= the configured target on generated workloads);
/// benches sweep them for recall-vs-QPS curves.
struct AnnConfig {
  AnnBackend backend = AnnBackend::kLsh;
  uint64_t seed = 42;  ///< hyperplane / level-assignment stream

  // --- LSH ---------------------------------------------------------------
  int64_t lsh_tables = 8;  ///< independent hash tables (unioned candidates)
  /// Hyperplanes (= signature bits) per table; 0 = auto-scale to
  /// ~ceil(log2(n)) so buckets stay thin (about one point each) at any
  /// index size — multiprobe supplies the neighborhood, not fat buckets.
  /// Clamped to 20 (bounds the direct-addressed offset arrays).
  int64_t lsh_bits = 0;
  /// Multiprobe: buckets visited per table (the exact bucket plus probes-1
  /// single-bit flips in order of ascending projection confidence).
  int64_t lsh_probes = 16;

  // --- HNSW --------------------------------------------------------------
  int64_t hnsw_degree = 12;           ///< M: neighbors kept per node/level
  int64_t hnsw_ef_construction = 96;  ///< beam width while inserting
  int64_t hnsw_ef_search = 96;        ///< beam width while querying
};

/// \brief Routing policy consulted by AlignTopK implementations
/// (DESIGN.md §11): when to leave the exact chunked path for the index.
struct AnnPolicy {
  AnnMode mode = AnnMode::kAuto;
  /// Requested recall of ANN top-k vs. the exact top-k. Maps to search
  /// effort (beam widths / probe counts scale up with the target); the
  /// recall property test measures the achieved value.
  double recall_target = 0.98;
  /// kAuto threshold: both sides must have at least this many rows before
  /// index construction can amortize against the O(n1 * n2 * d) scan.
  int64_t min_rows = 4096;
  /// Candidate-set width for the stability-refinement scan (Eq. 13 only
  /// needs argmax candidates, not the dense row).
  int64_t refine_candidates = 32;
  AnnConfig config;
};

/// \brief Batched inner-product top-k retrieval over an immutable row set.
///
/// Indices are immutable after construction; QueryBatch is const and safe
/// to call from many threads concurrently (the serving arc's read path).
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  /// Backend name ("lsh", "hnsw").
  virtual std::string name() const = 0;
  /// Rows actually indexed (== base rows unless the build wound down).
  virtual int64_t size() const = 0;
  /// Embedding dimensionality.
  virtual int64_t dim() const = 0;
  /// True when a deadline/cancellation truncated construction; the index
  /// answers queries over the inserted prefix only.
  virtual bool truncated() const = 0;
  /// Bytes held by the index (base copy + retrieval structure).
  virtual uint64_t MemoryBytes() const = 0;
  /// The indexed base rows (the matrix handed to BuildAnnIndex). Exposed
  /// for serialization and behavioral fingerprinting (graph/ann/ann_io.h);
  /// immutable like the rest of the index.
  virtual const Matrix& base() const = 0;

  /// \brief Per-row top-k of `queries` against the indexed base rows by
  /// inner product, descending per row, ties toward the smaller base index
  /// (the TopKSelect contract, so results are comparable with the exact
  /// chunked path).
  ///
  /// Rows beyond rows_computed (deadline wind-down) hold -1. `k` is
  /// clamped to size(). Thread-safe.
  ///
  /// `effort` in (0, 1] scales query-time search breadth (LSH probe count,
  /// HNSW beam width) without touching the immutable structure: values
  /// below 1 trade recall for latency. This is the serving layer's
  /// degradation knob (DESIGN.md §12) — a loaded server steps effort down
  /// instead of queueing unboundedly. Clamped to at least one probe /
  /// a beam of k; effort 1 is exactly the configured search.
  [[nodiscard]] virtual Result<TopKAlignment> QueryBatch(
      const Matrix& queries, int64_t k, const RunContext& ctx = RunContext(),
      double effort = 1.0) const = 0;
};

/// \brief Builds the configured backend over `base` (rows = points to
/// index). Takes ownership of `base`; the index keeps it for exact
/// re-ranking. Reserves EstimateAnnIndexBytes against ctx.budget() for the
/// life of the index.
[[nodiscard]] Result<std::unique_ptr<AnnIndex>> BuildAnnIndex(
    Matrix base, const AnnConfig& config,
    const RunContext& ctx = RunContext());

/// Order-of-magnitude peak bytes BuildAnnIndex needs for n rows of
/// dimension d under `config` (the pre-flight admission estimate).
uint64_t EstimateAnnIndexBytes(int64_t n, int64_t dim,
                               const AnnConfig& config);

/// Effective signature width for an LSH index over n points (resolves the
/// lsh_bits == 0 auto rule).
int64_t EffectiveLshBits(const AnnConfig& config, int64_t n);

}  // namespace galign
