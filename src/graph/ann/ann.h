// Routing from multi-order embedding similarity to ANN retrieval
// (DESIGN.md §11).
//
// The multi-order score S(v, u) = sum_l theta_l <H_s^(l)[v], H_t^(l)[u]>
// (Eq. 12) is a single inner product of concatenated rows once the query
// side is scaled by theta: q_v = [theta_0 H_s^(0)[v] | theta_1 H_s^(1)[v] |
// ...] against the unscaled base b_u = [H_t^(0)[u] | ...]. That reduction
// is what lets one AnnIndex serve arbitrary layer weightings — and since
// each layer's rows are unit-normalized, concatenated norms are constant
// per side, so inner-product order equals cosine order and both backends'
// assumptions hold.
#pragma once

#include <cstdint>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "graph/ann/ann_index.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {

/// The routing predicate of DESIGN.md §11: kOn always routes, kOff never,
/// kAuto requires both sides to reach policy.min_rows (below that the
/// O(n1 * n2) chunked scan wins — index construction cannot amortize).
bool ShouldUseAnn(const AnnPolicy& policy, int64_t n1, int64_t n2);

/// The policy's backend config with search effort scaled to the recall
/// target (more probed buckets / a wider beam for tighter targets). The
/// recall property test measures what a scaled config actually achieves.
AnnConfig EffortScaledConfig(const AnnPolicy& policy);

/// Horizontally concatenates layer rows into one (n x sum dims) matrix,
/// optionally scaling layer l by scale[l] (pass nullptr for unscaled).
/// Budget-admitted via Matrix::TryCreate.
[[nodiscard]] Result<Matrix> ConcatLayerRows(const std::vector<Matrix>& layers,
                                             const std::vector<double>* scale,
                                             MemoryBudget* budget);

/// \brief ANN-routed drop-in for ChunkedEmbeddingTopK: same inputs, same
/// TopKAlignment output contract (descending scores, lowest-index ties,
/// -1 padding), approximate retrieval instead of the exact O(n1 * n2 * d)
/// scan.
///
/// Builds an index over the concatenated target layers and batch-queries
/// the theta-scaled source concatenation. Honors ctx deadlines (partial
/// rows_computed) and budget admission at both stages.
[[nodiscard]] Result<TopKAlignment> AnnEmbeddingTopK(
    const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
    const std::vector<double>& theta, int64_t k, const AnnPolicy& policy,
    const RunContext& ctx);

}  // namespace galign
