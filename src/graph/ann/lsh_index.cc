// Cosine LSH via signed random projections (Charikar 2002), multi-table
// with multiprobe (Lv et al. 2007).
//
// Build: every indexed row is projected onto `tables * bits` Gaussian
// hyperplanes with one blocked GEMM (the PR-1 kernel — hashing is a matrix
// product, not n scalar loops); the sign pattern of each `bits`-wide slice
// is that table's bucket signature. Each table freezes into a
// direct-addressed CSR layout — bucket_starts (2^bits + 1 offsets) plus a
// packed id array ordered by (signature, id) — so probing a bucket is two
// array reads, not a binary search over the whole table (the searches were
// the dominant query cost: ~15 dependent cache misses per probed bucket,
// per table). Iteration inside a bucket is ascending id (determinism).
//
// Query: signatures come from the same GEMM over the query block. Per
// table the exact bucket is probed first, then buckets at Hamming
// distance 1, 2, ... obtained by flipping the lowest-|projection| bits
// (the bits most likely to disagree across the boundary). The union of
// probed buckets, deduped with a stamp array, is re-ranked exactly against
// the stored base rows through a bounded (score desc, id asc) heap — the
// same total order TopKSelect uses — so the output contract (descending
// score, lowest index wins) is identical to the exact chunked scan and
// recall is the only difference.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "graph/ann/backends.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"
#include "la/ops.h"

namespace galign {
namespace ann_internal {
namespace {

// Rows hashed (build) or queried per outer block: bounds the transient
// projection buffer and sets the deadline-poll granularity.
constexpr int64_t kHashBlockRows = 4096;
constexpr int64_t kQueryBlockRows = 256;

using SigEntry = std::pair<uint32_t, int32_t>;  // (signature, base row id)

class LshIndex final : public AnnIndex {
 public:
  LshIndex(Matrix base, Matrix planes, int64_t tables, int64_t bits,
           int64_t probes, MemoryScope scope)
      : base_(std::move(base)),
        planes_(std::move(planes)),
        tables_(tables),
        bits_(bits),
        probes_(probes),
        scope_(std::move(scope)),
        bucket_starts_(static_cast<size_t>(tables)),
        bucket_ids_(static_cast<size_t>(tables)) {}

  std::string name() const override { return "lsh"; }
  int64_t size() const override { return indexed_; }
  int64_t dim() const override { return base_.cols(); }
  bool truncated() const override { return indexed_ < base_.rows(); }
  const Matrix& base() const override { return base_; }

  uint64_t MemoryBytes() const override {
    uint64_t bytes = DenseBytes(base_.rows(), base_.cols()) +
                     DenseBytes(planes_.rows(), planes_.cols());
    for (const auto& t : bucket_starts_) bytes += t.size() * sizeof(int32_t);
    for (const auto& t : bucket_ids_) bytes += t.size() * sizeof(int32_t);
    return bytes;
  }

  [[nodiscard]] Result<TopKAlignment> QueryBatch(
      const Matrix& queries, int64_t k, const RunContext& ctx,
      double effort) const override;

  /// Hashes rows [0, n) of the base into the tables, winding down at the
  /// deadline with the prefix inserted so far.
  Status BuildTables(const RunContext& ctx);

  /// Signature of `bits_`-wide projection slice `t` in `proj` row `r`.
  uint32_t Signature(const Matrix& proj, int64_t r, int64_t t) const {
    uint32_t sig = 0;
    const double* p = proj.row_data(r) + t * bits_;
    for (int64_t b = 0; b < bits_; ++b) {
      if (p[b] >= 0.0) sig |= (uint32_t{1} << b);
    }
    return sig;
  }

 private:
  // Appends candidate ids from the bucket `sig` of table `t`, deduping via
  // the epoch-stamped scratch array. Direct-addressed: two offset reads
  // bound the bucket's slice of the packed id array. Each fresh candidate's
  // base row is prefetched here — by the time the re-rank loop reads it the
  // line is resident, which matters because candidate rows are scattered
  // across a base that far outgrows L2 (the gathers, not the dot products,
  // bound re-rank throughput).
  void ProbeBucket(int64_t t, uint32_t sig, int32_t epoch,
                   std::vector<int32_t>* stamp,
                   std::vector<int32_t>* cand) const {
    const auto& starts = bucket_starts_[static_cast<size_t>(t)];
    const auto& ids = bucket_ids_[static_cast<size_t>(t)];
    const int32_t b = starts[sig];
    const int32_t e = starts[sig + 1];
    for (int32_t j = b; j < e; ++j) {
      const int32_t id = ids[static_cast<size_t>(j)];
      if ((*stamp)[id] != epoch) {
        (*stamp)[id] = epoch;
        __builtin_prefetch(base_.row_data(id));
        cand->push_back(id);
      }
    }
  }

  Matrix base_;
  Matrix planes_;  // (tables * bits) x dim hyperplane normals
  int64_t tables_;
  int64_t bits_;
  int64_t probes_;
  int64_t indexed_ = 0;
  MemoryScope scope_;  // index-lifetime budget reservation
  // Per-table CSR buckets: starts has 2^bits + 1 offsets into ids, which
  // holds the indexed row ids ordered by (signature, id).
  std::vector<std::vector<int32_t>> bucket_starts_;
  std::vector<std::vector<int32_t>> bucket_ids_;
};

Status LshIndex::BuildTables(const RunContext& ctx) {
  const int64_t n = base_.rows();
  const int64_t sig_cols = tables_ * bits_;
  const size_t nbuckets = size_t{1} << bits_;
  if (n == 0) {
    try {
      for (auto& t : bucket_starts_) t.assign(nbuckets + 1, 0);
    } catch (const std::bad_alloc&) {
      return Status::ResourceExhausted("LshIndex: bucket offsets do not fit");
    }
    return Status::OK();
  }

  // Transient per-table (signature, id) pairs; frozen into CSR below.
  std::vector<std::vector<SigEntry>> entries(static_cast<size_t>(tables_));
  try {
    for (auto& t : entries) t.reserve(static_cast<size_t>(n));
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("LshIndex: bucket arrays for " +
                                     std::to_string(n) + " rows do not fit");
  }

  auto proj = Matrix::TryCreate(std::min(kHashBlockRows, n), sig_cols);
  GALIGN_RETURN_NOT_OK(proj.status());
  Matrix& p = proj.ValueOrDie();

  for (int64_t r0 = 0; r0 < n; r0 += kHashBlockRows) {
    if (ctx.ShouldStop()) break;  // truncated index over the prefix
    const int64_t nrows = std::min(kHashBlockRows, n - r0);
    const Matrix strip = base_.Block(r0, 0, nrows, base_.cols());
    if (p.rows() != nrows) p.Resize(nrows, sig_cols);
    MatMulTransposedBInto(strip, planes_, &p);
    for (int64_t i = 0; i < nrows; ++i) {
      for (int64_t t = 0; t < tables_; ++t) {
        entries[static_cast<size_t>(t)].emplace_back(
            Signature(p, i, t), static_cast<int32_t>(r0 + i));
      }
    }
    indexed_ = r0 + nrows;
  }

  // Freeze: sort by (signature, id), then prefix-sum bucket counts into
  // the direct-addressed offset arrays.
  try {
    for (int64_t t = 0; t < tables_; ++t) {
      auto& ent = entries[static_cast<size_t>(t)];
      std::sort(ent.begin(), ent.end());
      auto& starts = bucket_starts_[static_cast<size_t>(t)];
      auto& ids = bucket_ids_[static_cast<size_t>(t)];
      starts.assign(nbuckets + 1, 0);
      ids.resize(ent.size());
      for (const SigEntry& e : ent) ++starts[e.first + 1];
      for (size_t s = 1; s <= nbuckets; ++s) starts[s] += starts[s - 1];
      for (size_t j = 0; j < ent.size(); ++j) ids[j] = ent[j].second;
      ent.clear();
      ent.shrink_to_fit();
    }
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("LshIndex: bucket offsets for " +
                                     std::to_string(tables_) + " x 2^" +
                                     std::to_string(bits_) +
                                     " buckets do not fit");
  }
  return Status::OK();
}

Result<TopKAlignment> LshIndex::QueryBatch(const Matrix& queries, int64_t k,
                                           const RunContext& ctx,
                                           double effort) const {
  if (queries.cols() != base_.cols()) {
    return Status::InvalidArgument(
        "LshIndex::QueryBatch: query dim " + std::to_string(queries.cols()) +
        " != index dim " + std::to_string(base_.cols()));
  }
  if (k <= 0) {
    return Status::InvalidArgument("LshIndex::QueryBatch: k must be > 0");
  }
  const int64_t rows = queries.rows();
  const int64_t kq = std::min(k, indexed_);
  auto out_r = MakeEmptyTopK(rows, base_.rows(), kq);
  GALIGN_RETURN_NOT_OK(out_r.status());
  TopKAlignment& out = out_r.ValueOrDie();
  if (rows == 0 || kq == 0) {
    out.rows_computed = rows;  // nothing retrievable: all rows are -1 padded
    return out_r;
  }

  // Degraded effort visits fewer buckets per table; the exact bucket is
  // always probed, so effort only trims the multiprobe expansion.
  const double eff = std::clamp(effort, 0.0, 1.0);
  const int64_t eff_probes = std::max<int64_t>(
      1, std::llround(static_cast<double>(probes_) * eff));
  const int64_t sig_cols = tables_ * bits_;
  const int64_t qblock = std::min(kQueryBlockRows, rows);
  MemoryScope scope;
  GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
      ctx.budget(),
      TopKOutputBytes(rows, kq) + DenseBytes(qblock, sig_cols) +
          static_cast<uint64_t>(ParallelismLevel()) *
              static_cast<uint64_t>(indexed_) * sizeof(int32_t),
      "lsh query batch", &scope));

  auto proj = Matrix::TryCreate(qblock, sig_cols);
  GALIGN_RETURN_NOT_OK(proj.status());
  Matrix& p = proj.ValueOrDie();

  for (int64_t r0 = 0; r0 < rows; r0 += qblock) {
    if (ctx.ShouldStop()) break;  // wind down with the rows finished so far
    const int64_t nrows = std::min(qblock, rows - r0);
    const Matrix strip = queries.Block(r0, 0, nrows, queries.cols());
    if (p.rows() != nrows) p.Resize(nrows, sig_cols);
    MatMulTransposedBInto(strip, planes_, &p);

    ParallelFor(
        0, nrows,
        [&](int64_t cb, int64_t ce) {
          // Per-chunk scratch; the epoch stamp makes dedupe O(1) per id
          // without clearing between queries.
          std::vector<int32_t> stamp(static_cast<size_t>(base_.rows()), -1);
          std::vector<int32_t> cand;
          std::vector<int32_t> order(static_cast<size_t>(bits_));
          // Bounded top-k heap over (score, id), worst kept entry on top.
          // Candidates stream through in bucket order — no sort, no dense
          // score array — and the (descending score, ascending id) total
          // order makes the kept set and its output order identical to the
          // exact path's TopKSelect contract.
          struct Ent {
            double score;
            int32_t id;
          };
          auto better = [](const Ent& a, const Ent& b) {
            return a.score != b.score ? a.score > b.score : a.id < b.id;
          };
          std::vector<Ent> heap;
          heap.reserve(static_cast<size_t>(kq));
          for (int64_t i = cb; i < ce; ++i) {
            const int32_t epoch = static_cast<int32_t>(i);
            cand.clear();
            for (int64_t t = 0; t < tables_; ++t) {
              const uint32_t sig = Signature(p, i, t);
              ProbeBucket(t, sig, epoch, &stamp, &cand);
              if (eff_probes <= 1) continue;
              // Flip order: least-confident bits (smallest |projection|)
              // first — those are the likeliest to differ from a true
              // neighbor's signature.
              const double* pr = p.row_data(i) + t * bits_;
              for (int64_t b = 0; b < bits_; ++b)
                order[static_cast<size_t>(b)] = static_cast<int32_t>(b);
              std::sort(order.begin(), order.end(),
                        [&](int32_t a, int32_t b) {
                          const double fa = std::fabs(pr[a]);
                          const double fb = std::fabs(pr[b]);
                          return fa != fb ? fa < fb : a < b;
                        });
              int64_t emitted = 1;
              for (int64_t a = 0; a < bits_ && emitted < eff_probes; ++a) {
                ProbeBucket(t, sig ^ (uint32_t{1} << order[a]), epoch,
                            &stamp, &cand);
                ++emitted;
              }
              for (int64_t a = 0; a < bits_ && emitted < eff_probes; ++a) {
                for (int64_t b = a + 1; b < bits_ && emitted < eff_probes;
                     ++b) {
                  ProbeBucket(t,
                              sig ^ (uint32_t{1} << order[a]) ^
                                  (uint32_t{1} << order[b]),
                              epoch, &stamp, &cand);
                  ++emitted;
                }
              }
            }
            const int64_t csize = static_cast<int64_t>(cand.size());
            const double* qr = queries.row_data(r0 + i);
            heap.clear();
            for (int64_t c = 0; c < csize; ++c) {
              const int32_t id = cand[static_cast<size_t>(c)];
              const Ent e{RowDot(qr, base_.row_data(id), base_.cols()), id};
              if (static_cast<int64_t>(heap.size()) < kq) {
                heap.push_back(e);
                std::push_heap(heap.begin(), heap.end(), better);
              } else if (better(e, heap.front())) {
                std::pop_heap(heap.begin(), heap.end(), better);
                heap.back() = e;
                std::push_heap(heap.begin(), heap.end(), better);
              }
            }
            // Drain worst-first, filling the row back-to-front; slots past
            // the kept count keep their -1 / -inf padding.
            while (!heap.empty()) {
              std::pop_heap(heap.begin(), heap.end(), better);
              const Ent e = heap.back();
              heap.pop_back();
              const int64_t j = static_cast<int64_t>(heap.size());
              out.index[(r0 + i) * kq + j] = e.id;
              out.score[(r0 + i) * kq + j] = e.score;
            }
          }
        },
        /*min_chunk=*/16);
    out.rows_computed = r0 + nrows;
  }
  return out_r;
}

}  // namespace

Result<std::unique_ptr<AnnIndex>> BuildLshIndex(Matrix base,
                                                const AnnConfig& config,
                                                const RunContext& ctx) {
  const int64_t n = base.rows();
  const int64_t d = base.cols();
  const int64_t tables = std::max<int64_t>(1, config.lsh_tables);
  const int64_t bits = EffectiveLshBits(config, n);
  const int64_t probes = std::max<int64_t>(1, config.lsh_probes);

  MemoryScope scope;
  GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(ctx.budget(),
                                            EstimateAnnIndexBytes(n, d, config),
                                            "lsh index", &scope));

  // Hyperplane normals: shape is configuration-bounded (tables * bits <=
  // 192 rows), so the throwing constructor is fine per DESIGN.md §9.
  Rng rng(config.seed);
  Matrix planes = Matrix::Gaussian(tables * bits, d, &rng);

  auto index = std::make_unique<LshIndex>(std::move(base), std::move(planes),
                                          tables, bits, probes,
                                          std::move(scope));
  GALIGN_RETURN_NOT_OK(index->BuildTables(ctx));
  return Result<std::unique_ptr<AnnIndex>>(std::move(index));
}

}  // namespace ann_internal
}  // namespace galign
