#include "graph/ann/ann_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>
#include <string>
#include <utility>

#include "common/memory_budget.h"
#include "graph/ann/backends.h"

namespace galign {

namespace {
constexpr double kNoScore = -std::numeric_limits<double>::infinity();
}  // namespace

int64_t EffectiveLshBits(const AnnConfig& config, int64_t n) {
  // The cap keeps the direct-addressed bucket-offset arrays bounded:
  // tables * 2^bits * 4 bytes, 4 MiB per table at 20 bits.
  if (config.lsh_bits > 0) {
    return std::min<int64_t>(config.lsh_bits, 20);
  }
  // Auto rule: ~1 point per bucket (2^bits >= n), clamped. Dense signatures
  // keep probed buckets thin on clustered data — with coarser buckets every
  // probe drags in whole near-duplicate groups and query cost scales with
  // group size instead of k.
  int64_t bits = 4;
  while (bits < 20 && (int64_t{1} << bits) < n) ++bits;
  return bits;
}

uint64_t EstimateAnnIndexBytes(int64_t n, int64_t dim,
                               const AnnConfig& config) {
  const uint64_t un = static_cast<uint64_t>(std::max<int64_t>(n, 0));
  const uint64_t base = DenseBytes(n, dim);
  if (config.backend == AnnBackend::kLsh) {
    const int64_t bits = EffectiveLshBits(config, n);
    const uint64_t tables =
        static_cast<uint64_t>(std::max<int64_t>(config.lsh_tables, 1));
    // Hyperplanes + per-table direct-addressed bucket offsets (2^bits + 1)
    // and packed id arrays, + the transient sorted (signature, id) pairs
    // and projection block used while hashing.
    return base + DenseBytes(tables * bits, dim) +
           tables * ((uint64_t{1} << bits) + 1 + un) * sizeof(int32_t) +
           un * (sizeof(uint32_t) + sizeof(int32_t)) +
           DenseBytes(4096, static_cast<int64_t>(tables) * bits);
  }
  // HNSW: level-0 adjacency of 2M plus a geometric tail of M-degree upper
  // levels (expectation ~1/(M-1) extra nodes per node, bounded by 2x).
  const uint64_t m =
      static_cast<uint64_t>(std::max<int64_t>(config.hnsw_degree, 2));
  return base + un * (3 * m + 2) * sizeof(int32_t) +
         un * 2 * sizeof(int64_t);
}

Result<std::unique_ptr<AnnIndex>> BuildAnnIndex(Matrix base,
                                                const AnnConfig& config,
                                                const RunContext& ctx) {
  if (base.rows() < 0 || base.cols() < 0) {
    return Status::InvalidArgument("BuildAnnIndex: negative base extents");
  }
  switch (config.backend) {
    case AnnBackend::kLsh:
      return ann_internal::BuildLshIndex(std::move(base), config, ctx);
    case AnnBackend::kHnsw:
      return ann_internal::BuildHnswIndex(std::move(base), config, ctx);
  }
  return Status::InvalidArgument("BuildAnnIndex: unknown backend");
}

namespace ann_internal {

Result<TopKAlignment> MakeEmptyTopK(int64_t rows, int64_t cols, int64_t k) {
  TopKAlignment out;
  out.rows = rows;
  out.cols = cols;
  out.k = k;
  out.rows_computed = 0;
  try {
    out.index.assign(static_cast<size_t>(rows) * k, -1);
    out.score.assign(static_cast<size_t>(rows) * k, kNoScore);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "AnnIndex: top-k output of " + std::to_string(rows) + "x" +
        std::to_string(k) + " does not fit");
  }
  return out;
}

}  // namespace ann_internal

}  // namespace galign
