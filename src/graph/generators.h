// Random graph generators used to synthesize alignment workloads: classic
// models (Erdős–Rényi, Barabási–Albert, Watts–Strogatz) plus a power-law
// configuration model that hits a target edge count, and attribute
// generators (binary bag-of-tags, one-hot categories, real-valued profiles).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace galign {

/// G(n, p): every pair independently connected with probability p.
[[nodiscard]] Result<AttributedGraph> ErdosRenyi(int64_t n, double p, Rng* rng,
                                   Matrix attributes = {});

/// Preferential attachment: each new node attaches m edges to existing nodes
/// with probability proportional to degree. Produces a power-law tail.
[[nodiscard]] Result<AttributedGraph> BarabasiAlbert(int64_t n, int64_t m, Rng* rng,
                                       Matrix attributes = {});

/// Ring lattice with k nearest neighbours per side rewired with prob. beta.
[[nodiscard]] Result<AttributedGraph> WattsStrogatz(int64_t n, int64_t k, double beta,
                                      Rng* rng, Matrix attributes = {});

/// \brief Power-law configuration model targeting ~target_edges edges.
///
/// Draws a degree sequence from a truncated power law with the given
/// exponent, scales it to the target edge count, then wires stubs uniformly
/// (discarding multi-edges and self-loops). Used to mimic the published
/// size/density statistics of the paper's datasets (Table II).
[[nodiscard]] Result<AttributedGraph> PowerLawGraph(int64_t n, int64_t target_edges,
                                      double exponent, Rng* rng,
                                      Matrix attributes = {});

/// Binary attributes: each of the m columns is 1 with probability density.
/// Guarantees at least one non-zero per row (a node always has a profile).
Matrix BinaryAttributes(int64_t n, int64_t m, double density, Rng* rng);

/// One-hot category per node over m categories, with popularity skew
/// (category c drawn with probability proportional to (c+1)^-skew).
Matrix OneHotAttributes(int64_t n, int64_t m, double skew, Rng* rng);

/// Real-valued profiles: each column j drawn N(mu_j, 1) with per-column
/// means spread over [0, spread].
Matrix RealAttributes(int64_t n, int64_t m, double spread, Rng* rng);

/// \brief Attributes correlated with topology: each node's attribute vector
/// is a noisy mixture of its community's profile. Communities are assigned
/// by contiguous node blocks.
Matrix CommunityAttributes(int64_t n, int64_t m, int64_t num_communities,
                           double noise, Rng* rng);

}  // namespace galign
