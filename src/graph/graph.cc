#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <new>

namespace galign {

Result<AttributedGraph> AttributedGraph::Create(int64_t num_nodes,
                                                std::vector<Edge> edges,
                                                Matrix attributes) {
  std::vector<WeightedEdge> weighted;
  weighted.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    weighted.push_back({u, v, 1.0});
  }
  auto result =
      CreateWeighted(num_nodes, std::move(weighted), std::move(attributes));
  if (!result.ok()) return result.status();
  // Unweighted semantics: duplicate edges collapse to weight 1, and the
  // graph reports itself as unweighted.
  AttributedGraph g = result.MoveValueOrDie();
  bool clamped = false;
  for (double& w : g.edge_weights_) {
    if (w != 1.0) {
      w = 1.0;
      clamped = true;
    }
  }
  if (clamped) {
    std::vector<Triplet> t;
    t.reserve(g.edges_.size() * 2);
    for (const auto& [u, v] : g.edges_) {
      t.push_back({u, v, 1.0});
      t.push_back({v, u, 1.0});
    }
    g.adjacency_ =
        SparseMatrix::FromTriplets(num_nodes, num_nodes, std::move(t));
  }
  g.weighted_ = false;
  return g;
}

Result<AttributedGraph> AttributedGraph::CreateWeighted(
    int64_t num_nodes, std::vector<WeightedEdge> edges, Matrix attributes) {
  if (num_nodes < 0) {
    return Status::InvalidArgument("negative node count");
  }
  // A text edge list can declare an absurd node count (or node id) in a
  // handful of bytes, and the CSR row pointers alone cost 8*(n+1) bytes —
  // reject counts that cannot possibly be serviced instead of dying inside
  // new[] (the graph fuzzer's loader stage covers this path).
  if (num_nodes > (int64_t{1} << 31)) {
    return Status::InvalidArgument(
        "node count " + std::to_string(num_nodes) +
        " exceeds the 2^31 construction cap");
  }
  for (auto& e : edges) {
    if (e.u < 0 || e.u >= num_nodes || e.v < 0 || e.v >= num_nodes) {
      return Status::InvalidArgument(
          "edge endpoint out of range: (" + std::to_string(e.u) + ", " +
          std::to_string(e.v) + ") with n=" + std::to_string(num_nodes));
    }
    if (!(e.weight > 0.0) || !std::isfinite(e.weight)) {
      return Status::InvalidArgument(
          "edge weight must be positive and finite");
    }
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  // Drop self loops; normalization re-adds them.
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const WeightedEdge& e) { return e.u == e.v; }),
              edges.end());
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });

  if (attributes.empty()) {
    auto ones = Matrix::TryCreate(num_nodes, 1, 1.0);
    GALIGN_RETURN_NOT_OK(ones.status());
    attributes = ones.MoveValueOrDie();
  }
  if (attributes.rows() != num_nodes) {
    return Status::InvalidArgument(
        "attribute rows (" + std::to_string(attributes.rows()) +
        ") != num_nodes (" + std::to_string(num_nodes) + ")");
  }

  AttributedGraph g;
  g.num_nodes_ = num_nodes;
  g.attributes_ = std::move(attributes);
  // Merge duplicates by summing weights.
  for (size_t i = 0; i < edges.size();) {
    int64_t u = edges[i].u, v = edges[i].v;
    double w = 0.0;
    while (i < edges.size() && edges[i].u == u && edges[i].v == v) {
      w += edges[i].weight;
      ++i;
    }
    g.edges_.emplace_back(u, v);
    g.edge_weights_.push_back(w);
  }
  g.weighted_ = false;
  for (double w : g.edge_weights_) {
    if (w != 1.0) {
      g.weighted_ = true;
      break;
    }
  }

  // Below the cap a build can still exceed physical memory (the row
  // pointers scale with n even for an edgeless graph) — surface that as a
  // typed status, never an uncaught bad_alloc.
  try {
    std::vector<Triplet> t;
    t.reserve(g.edges_.size() * 2);
    for (size_t i = 0; i < g.edges_.size(); ++i) {
      const auto& [u, v] = g.edges_[i];
      t.push_back({u, v, g.edge_weights_[i]});
      t.push_back({v, u, g.edge_weights_[i]});
    }
    g.adjacency_ =
        SparseMatrix::FromTriplets(num_nodes, num_nodes, std::move(t));
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "graph adjacency for " + std::to_string(num_nodes) +
        " nodes does not fit in memory");
  }
  return g;
}

double AttributedGraph::EdgeWeight(int64_t u, int64_t v) const {
  return adjacency_.At(u, v);
}

double AttributedGraph::WeightedDegree(int64_t v) const {
  return adjacency_.RowSum(v);
}

int64_t AttributedGraph::Degree(int64_t v) const {
  return adjacency_.RowNnz(v);
}

std::vector<int64_t> AttributedGraph::Neighbors(int64_t v) const {
  std::vector<int64_t> out;
  const auto& rp = adjacency_.row_ptr();
  const auto& ci = adjacency_.col_idx();
  out.assign(ci.begin() + rp[v], ci.begin() + rp[v + 1]);
  return out;
}

bool AttributedGraph::HasEdge(int64_t u, int64_t v) const {
  return adjacency_.At(u, v) != 0.0;
}

double AttributedGraph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_nodes_);
}

Result<SparseMatrix> AttributedGraph::NormalizedAdjacency() const {
  return adjacency_.NormalizedWithSelfLoops();
}

Result<SparseMatrix> AttributedGraph::NormalizedAdjacency(
    const std::vector<double>& influence) const {
  return adjacency_.NormalizedWithInfluence(influence);
}

Result<AttributedGraph> AttributedGraph::Permuted(
    const std::vector<int64_t>& perm) const {
  if (static_cast<int64_t>(perm.size()) != num_nodes_) {
    return Status::InvalidArgument("permutation size mismatch");
  }
  std::vector<bool> seen(num_nodes_, false);
  for (int64_t p : perm) {
    if (p < 0 || p >= num_nodes_ || seen[p]) {
      return Status::InvalidArgument("not a permutation");
    }
    seen[p] = true;
  }
  std::vector<WeightedEdge> new_edges;
  new_edges.reserve(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    const auto& [u, v] = edges_[i];
    new_edges.push_back({perm[u], perm[v], edge_weights_[i]});
  }
  Matrix new_attrs(num_nodes_, attributes_.cols());
  for (int64_t v = 0; v < num_nodes_; ++v) {
    std::copy(attributes_.row_data(v),
              attributes_.row_data(v) + attributes_.cols(),
              new_attrs.row_data(perm[v]));
  }
  return CreateWeighted(num_nodes_, std::move(new_edges),
                        std::move(new_attrs));
}

Result<AttributedGraph> AttributedGraph::InducedSubgraph(
    const std::vector<int64_t>& nodes) const {
  std::vector<int64_t> inverse(num_nodes_, -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    int64_t v = nodes[i];
    if (v < 0 || v >= num_nodes_) {
      return Status::InvalidArgument("subgraph node out of range");
    }
    if (inverse[v] != -1) {
      return Status::InvalidArgument("duplicate node in subgraph selection");
    }
    inverse[v] = static_cast<int64_t>(i);
  }
  std::vector<WeightedEdge> sub_edges;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const auto& [u, v] = edges_[i];
    if (inverse[u] != -1 && inverse[v] != -1) {
      sub_edges.push_back({inverse[u], inverse[v], edge_weights_[i]});
    }
  }
  Matrix sub_attrs(static_cast<int64_t>(nodes.size()), attributes_.cols());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::copy(attributes_.row_data(nodes[i]),
              attributes_.row_data(nodes[i]) + attributes_.cols(),
              sub_attrs.row_data(static_cast<int64_t>(i)));
  }
  return CreateWeighted(static_cast<int64_t>(nodes.size()),
                        std::move(sub_edges), std::move(sub_attrs));
}

Result<AttributedGraph> AttributedGraph::WithAttributes(
    Matrix attributes) const {
  if (attributes.rows() != num_nodes_) {
    return Status::InvalidArgument("attribute row count mismatch");
  }
  AttributedGraph g = *this;
  g.attributes_ = std::move(attributes);
  return g;
}

}  // namespace galign
