#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace galign {

Result<AttributedGraph> ErdosRenyi(int64_t n, double p, Rng* rng,
                                   Matrix attributes) {
  if (n < 0 || p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("ErdosRenyi: invalid n or p");
  }
  std::vector<Edge> edges;
  if (p > 0.2) {
    // Dense regime: direct Bernoulli per pair.
    for (int64_t u = 0; u < n; ++u) {
      for (int64_t v = u + 1; v < n; ++v) {
        if (rng->Bernoulli(p)) edges.emplace_back(u, v);
      }
    }
  } else if (p > 0.0) {
    // Sparse regime: geometric skipping over the pair sequence.
    const double log1mp = std::log(1.0 - p);
    int64_t u = 0, v = 0;
    while (u < n) {
      double r = std::max(rng->Uniform(), 1e-300);
      int64_t skip = static_cast<int64_t>(std::floor(std::log(r) / log1mp));
      v += 1 + skip;
      while (v >= n && u < n) {
        ++u;
        v = u + 1 + (v - n);
      }
      if (u < n - 1 && v < n) edges.emplace_back(u, v);
    }
  }
  return AttributedGraph::Create(n, std::move(edges), std::move(attributes));
}

Result<AttributedGraph> BarabasiAlbert(int64_t n, int64_t m, Rng* rng,
                                       Matrix attributes) {
  if (n <= 0 || m <= 0 || m >= n) {
    return Status::InvalidArgument("BarabasiAlbert: need 0 < m < n");
  }
  std::vector<Edge> edges;
  // Repeated-endpoint list: sampling uniformly from it implements
  // degree-proportional selection.
  std::vector<int64_t> endpoints;
  // Seed: star over the first m+1 nodes.
  for (int64_t v = 1; v <= m; ++v) {
    edges.emplace_back(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }
  for (int64_t v = m + 1; v < n; ++v) {
    std::set<int64_t> targets;
    while (static_cast<int64_t>(targets.size()) < m) {
      int64_t t = endpoints[rng->UniformInt(
          static_cast<int64_t>(endpoints.size()))];
      targets.insert(t);
    }
    for (int64_t t : targets) {
      edges.emplace_back(t, v);
      endpoints.push_back(t);
      endpoints.push_back(v);
    }
  }
  return AttributedGraph::Create(n, std::move(edges), std::move(attributes));
}

Result<AttributedGraph> WattsStrogatz(int64_t n, int64_t k, double beta,
                                      Rng* rng, Matrix attributes) {
  if (n <= 0 || k <= 0 || 2 * k >= n || beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("WattsStrogatz: invalid parameters");
  }
  std::set<Edge> edge_set;
  auto canon = [](int64_t a, int64_t b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  };
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t j = 1; j <= k; ++j) {
      edge_set.insert(canon(u, (u + j) % n));
    }
  }
  // Rewire.
  std::vector<Edge> edges(edge_set.begin(), edge_set.end());
  for (Edge& e : edges) {
    if (!rng->Bernoulli(beta)) continue;
    for (int attempt = 0; attempt < 32; ++attempt) {
      int64_t w = rng->UniformInt(n);
      if (w == e.first || w == e.second) continue;
      Edge cand = canon(e.first, w);
      if (edge_set.count(cand)) continue;
      edge_set.erase(canon(e.first, e.second));
      edge_set.insert(cand);
      e = cand;
      break;
    }
  }
  return AttributedGraph::Create(
      n, std::vector<Edge>(edge_set.begin(), edge_set.end()),
      std::move(attributes));
}

Result<AttributedGraph> PowerLawGraph(int64_t n, int64_t target_edges,
                                      double exponent, Rng* rng,
                                      Matrix attributes) {
  if (n <= 1 || target_edges < 0 || exponent <= 1.0) {
    return Status::InvalidArgument("PowerLawGraph: invalid parameters");
  }
  // Draw raw degrees from a discrete power law via inverse transform on a
  // Pareto and truncate at n - 1.
  std::vector<double> raw(n);
  double raw_sum = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    double u = std::max(rng->Uniform(), 1e-12);
    double deg = std::pow(u, -1.0 / (exponent - 1.0));
    deg = std::min(deg, static_cast<double>(n - 1));
    raw[v] = deg;
    raw_sum += deg;
  }
  // Scale to hit 2 * target_edges stubs.
  const double scale = (2.0 * static_cast<double>(target_edges)) / raw_sum;
  std::vector<int64_t> stubs;
  stubs.reserve(2 * target_edges + n);
  for (int64_t v = 0; v < n; ++v) {
    double d = raw[v] * scale;
    int64_t di = static_cast<int64_t>(d);
    if (rng->Uniform() < d - di) ++di;
    di = std::max<int64_t>(di, 1);  // keep the graph connected-ish
    di = std::min<int64_t>(di, n - 1);
    for (int64_t i = 0; i < di; ++i) stubs.push_back(v);
  }
  rng->Shuffle(&stubs);
  std::set<Edge> edge_set;
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    int64_t u = stubs[i], v = stubs[i + 1];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edge_set.insert({u, v});
  }
  return AttributedGraph::Create(
      n, std::vector<Edge>(edge_set.begin(), edge_set.end()),
      std::move(attributes));
}

Matrix BinaryAttributes(int64_t n, int64_t m, double density, Rng* rng) {
  Matrix f(n, m);
  for (int64_t r = 0; r < n; ++r) {
    bool any = false;
    for (int64_t c = 0; c < m; ++c) {
      if (rng->Bernoulli(density)) {
        f(r, c) = 1.0;
        any = true;
      }
    }
    if (!any) f(r, rng->UniformInt(m)) = 1.0;
  }
  return f;
}

Matrix OneHotAttributes(int64_t n, int64_t m, double skew, Rng* rng) {
  std::vector<double> weights(m);
  double total = 0.0;
  for (int64_t c = 0; c < m; ++c) {
    weights[c] = std::pow(static_cast<double>(c + 1), -skew);
    total += weights[c];
  }
  Matrix f(n, m);
  for (int64_t r = 0; r < n; ++r) {
    double x = rng->Uniform() * total;
    int64_t c = 0;
    while (c < m - 1 && x > weights[c]) {
      x -= weights[c];
      ++c;
    }
    f(r, c) = 1.0;
  }
  return f;
}

Matrix RealAttributes(int64_t n, int64_t m, double spread, Rng* rng) {
  std::vector<double> mu(m);
  for (int64_t c = 0; c < m; ++c) mu[c] = rng->Uniform(0.0, spread);
  Matrix f(n, m);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < m; ++c) f(r, c) = rng->Normal(mu[c], 1.0);
  }
  return f;
}

Matrix CommunityAttributes(int64_t n, int64_t m, int64_t num_communities,
                           double noise, Rng* rng) {
  if (num_communities < 1) num_communities = 1;
  Matrix profiles = Matrix::Uniform(num_communities, m, rng);
  Matrix f(n, m);
  for (int64_t r = 0; r < n; ++r) {
    int64_t c = std::min(r * num_communities / std::max<int64_t>(n, 1),
                         num_communities - 1);
    for (int64_t j = 0; j < m; ++j) {
      f(r, j) = profiles(c, j) + rng->Normal(0.0, noise);
    }
  }
  return f;
}

}  // namespace galign
