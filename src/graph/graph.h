// Attributed undirected graph G = (V, A, F) (paper §II-A): node set, 0/1
// adjacency, and an n x m node attribute matrix whose rows carry the
// application-domain semantics of each node.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace galign {

/// An undirected edge (endpoints stored in canonical u <= v order).
using Edge = std::pair<int64_t, int64_t>;

/// An undirected weighted edge.
struct WeightedEdge {
  int64_t u;
  int64_t v;
  double weight;
};

/// \brief Immutable attributed network.
///
/// Construction validates endpoints, canonicalizes and deduplicates edges,
/// drops self-loops (the GCN re-adds self-loops during normalization), and
/// builds the symmetric CSR adjacency once.
class AttributedGraph {
 public:
  AttributedGraph() = default;

  /// Builds a graph with `num_nodes` nodes, the given undirected edges, and
  /// the given attribute matrix (rows = num_nodes). An empty attribute
  /// matrix is replaced by a single constant attribute column.
  [[nodiscard]] static Result<AttributedGraph> Create(int64_t num_nodes,
                                        std::vector<Edge> edges,
                                        Matrix attributes);

  /// Weighted variant: duplicate edges have their weights summed; weights
  /// must be positive (the GCN normalization needs positive degrees). The
  /// unweighted factory is equivalent to all-ones weights.
  [[nodiscard]] static Result<AttributedGraph> CreateWeighted(
      int64_t num_nodes, std::vector<WeightedEdge> edges, Matrix attributes);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  int64_t num_attributes() const { return attributes_.cols(); }

  const std::vector<Edge>& edges() const { return edges_; }
  const Matrix& attributes() const { return attributes_; }
  const SparseMatrix& adjacency() const { return adjacency_; }

  /// True iff any edge weight differs from 1.
  bool is_weighted() const { return weighted_; }

  /// Weight of edge {u, v} (0 if absent).
  double EdgeWeight(int64_t u, int64_t v) const;

  /// Weighted degree (sum of incident edge weights) of node v.
  double WeightedDegree(int64_t v) const;

  /// Degree of node v (self-loops excluded).
  int64_t Degree(int64_t v) const;
  /// Neighbors of node v (sorted).
  std::vector<int64_t> Neighbors(int64_t v) const;
  /// True iff edge {u, v} exists.
  bool HasEdge(int64_t u, int64_t v) const;

  /// 2 * |E| / |V|.
  double AverageDegree() const;

  /// The GCN propagation matrix C = D̂^{-1/2} Â D̂^{-1/2} (Eq. 1).
  [[nodiscard]] Result<SparseMatrix> NormalizedAdjacency() const;

  /// Like NormalizedAdjacency with per-node influence factors (Eq. 15).
  [[nodiscard]] Result<SparseMatrix> NormalizedAdjacency(
      const std::vector<double>& influence) const;

  /// Returns the graph relabeled by `perm`: node i becomes perm[i]. Edges and
  /// attribute rows move with the node. perm must be a permutation of 0..n-1.
  [[nodiscard]] Result<AttributedGraph> Permuted(const std::vector<int64_t>& perm) const;

  /// Induced subgraph on `nodes` (relabeled 0..|nodes|-1 in list order).
  [[nodiscard]] Result<AttributedGraph> InducedSubgraph(
      const std::vector<int64_t>& nodes) const;

  /// Returns a copy with the attribute matrix replaced (row count must
  /// match).
  [[nodiscard]] Result<AttributedGraph> WithAttributes(Matrix attributes) const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<double> edge_weights_;  // parallel to edges_
  bool weighted_ = false;
  Matrix attributes_;
  SparseMatrix adjacency_;
};

}  // namespace galign
