#include "graph/similarity.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/stats.h"
#include "la/decomposition.h"
#include "la/ops.h"

namespace galign {

namespace {

std::vector<double> NormalizedDegreeHistogram(const AttributedGraph& g,
                                              size_t width) {
  std::vector<int64_t> hist = DegreeHistogram(g);
  std::vector<double> p(width, 0.0);
  const double n = std::max<double>(1.0, static_cast<double>(g.num_nodes()));
  for (size_t d = 0; d < hist.size() && d < width; ++d) {
    p[d] = static_cast<double>(hist[d]) / n;
  }
  return p;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0 && q[i] > 0.0) kl += p[i] * std::log(p[i] / q[i]);
  }
  return kl;
}

}  // namespace

double DegreeDistributionDivergence(const AttributedGraph& a,
                                    const AttributedGraph& b) {
  size_t width = std::max(DegreeHistogram(a).size(), DegreeHistogram(b).size());
  std::vector<double> p = NormalizedDegreeHistogram(a, width);
  std::vector<double> q = NormalizedDegreeHistogram(b, width);
  std::vector<double> m(width);
  for (size_t i = 0; i < width; ++i) m[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
}

Result<double> SpectralDistance(const AttributedGraph& a,
                                const AttributedGraph& b, int64_t k) {
  auto spectrum = [&](const AttributedGraph& g) -> Result<std::vector<double>> {
    auto norm = g.NormalizedAdjacency();
    GALIGN_RETURN_NOT_OK(norm.status());
    auto eig = SymmetricEigen(norm.ValueOrDie().ToDense());
    GALIGN_RETURN_NOT_OK(eig.status());
    std::vector<double> values = eig.ValueOrDie().eigenvalues;
    std::sort(values.begin(), values.end(), [](double x, double y) {
      return std::fabs(x) > std::fabs(y);
    });
    values.resize(std::min<size_t>(values.size(), static_cast<size_t>(k)));
    return values;
  };
  auto sa = spectrum(a);
  GALIGN_RETURN_NOT_OK(sa.status());
  auto sb = spectrum(b);
  GALIGN_RETURN_NOT_OK(sb.status());
  const auto& va = sa.ValueOrDie();
  const auto& vb = sb.ValueOrDie();
  double total = 0.0;
  for (int64_t i = 0; i < k; ++i) {
    double x = i < static_cast<int64_t>(va.size()) ? va[i] : 0.0;
    double y = i < static_cast<int64_t>(vb.size()) ? vb[i] : 0.0;
    total += (x - y) * (x - y);
  }
  return std::sqrt(total);
}

double EdgeOverlap(const AttributedGraph& a, const AttributedGraph& b,
                   const std::vector<int64_t>& correspondence) {
  std::set<Edge> mapped_a;
  for (const auto& [u, v] : a.edges()) {
    if (u >= static_cast<int64_t>(correspondence.size()) ||
        v >= static_cast<int64_t>(correspondence.size())) {
      continue;
    }
    int64_t mu = correspondence[u], mv = correspondence[v];
    if (mu == -1 || mv == -1) continue;
    mapped_a.insert({std::min(mu, mv), std::max(mu, mv)});
  }
  // b-side edges restricted to mapped nodes.
  std::set<int64_t> image;
  for (int64_t t : correspondence) {
    if (t != -1) image.insert(t);
  }
  std::set<Edge> restricted_b;
  for (const auto& [u, v] : b.edges()) {
    if (image.count(u) && image.count(v)) restricted_b.insert({u, v});
  }
  if (mapped_a.empty() && restricted_b.empty()) return 1.0;
  int64_t inter = 0;
  for (const Edge& e : mapped_a) inter += restricted_b.count(e);
  int64_t uni = static_cast<int64_t>(mapped_a.size() + restricted_b.size()) -
                inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double AttributeAgreement(const AttributedGraph& a, const AttributedGraph& b,
                          const std::vector<int64_t>& correspondence) {
  if (a.num_attributes() != b.num_attributes()) return 0.0;
  double total = 0.0;
  int64_t count = 0;
  for (size_t v = 0; v < correspondence.size(); ++v) {
    int64_t t = correspondence[v];
    if (t == -1 || static_cast<int64_t>(v) >= a.num_nodes() ||
        t >= b.num_nodes()) {
      continue;
    }
    total += RowCosine(a.attributes(), static_cast<int64_t>(v),
                       b.attributes(), t);
    ++count;
  }
  return count == 0 ? 0.0 : total / count;
}

double StructuralConsistency(const AttributedGraph& a,
                             const AttributedGraph& b,
                             const std::vector<int64_t>& correspondence) {
  int64_t mapped_edges = 0, preserved = 0;
  for (const auto& [u, v] : a.edges()) {
    if (u >= static_cast<int64_t>(correspondence.size()) ||
        v >= static_cast<int64_t>(correspondence.size())) {
      continue;
    }
    int64_t mu = correspondence[u], mv = correspondence[v];
    if (mu == -1 || mv == -1) continue;
    ++mapped_edges;
    if (b.HasEdge(mu, mv)) ++preserved;
  }
  return mapped_edges == 0 ? 1.0
                           : static_cast<double>(preserved) / mapped_edges;
}

}  // namespace galign
