#include "graph/noise.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace galign {

Result<AttributedGraph> RemoveEdges(const AttributedGraph& g, double ratio,
                                    Rng* rng) {
  if (ratio < 0.0 || ratio > 1.0) {
    return Status::InvalidArgument("RemoveEdges: ratio must be in [0, 1]");
  }
  std::vector<Edge> kept;
  kept.reserve(g.edges().size());
  for (const Edge& e : g.edges()) {
    if (!rng->Bernoulli(ratio)) kept.push_back(e);
  }
  Matrix attrs = g.attributes();
  return AttributedGraph::Create(g.num_nodes(), std::move(kept),
                                 std::move(attrs));
}

Result<AttributedGraph> AddRandomEdges(const AttributedGraph& g, double ratio,
                                       Rng* rng) {
  if (ratio < 0.0) {
    return Status::InvalidArgument("AddRandomEdges: negative ratio");
  }
  const int64_t n = g.num_nodes();
  int64_t to_add = static_cast<int64_t>(
      std::llround(ratio * static_cast<double>(g.num_edges())));
  std::vector<Edge> edges = g.edges();
  std::set<Edge> existing(edges.begin(), edges.end());
  int64_t added = 0, attempts = 0;
  const int64_t max_attempts = 50 * (to_add + 1);
  while (added < to_add && attempts < max_attempts && n > 1) {
    ++attempts;
    int64_t u = rng->UniformInt(n);
    int64_t v = rng->UniformInt(n);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (existing.insert({u, v}).second) {
      edges.emplace_back(u, v);
      ++added;
    }
  }
  Matrix attrs = g.attributes();
  return AttributedGraph::Create(n, std::move(edges), std::move(attrs));
}

Result<AttributedGraph> PerturbStructure(const AttributedGraph& g, double p_s,
                                         Rng* rng) {
  auto removed = RemoveEdges(g, p_s, rng);
  if (!removed.ok()) return removed.status();
  // Adding back the same expected volume keeps density roughly constant
  // while breaking structural consistency, per §V-C.
  double removed_fraction =
      g.num_edges() == 0
          ? 0.0
          : 1.0 - static_cast<double>(removed.ValueOrDie().num_edges()) /
                      static_cast<double>(g.num_edges());
  return AddRandomEdges(removed.ValueOrDie(), removed_fraction, rng);
}

Matrix PerturbBinaryAttributes(const Matrix& f, double p_a, Rng* rng) {
  Matrix out = f;
  const int64_t m = f.cols();
  if (m == 0) return out;
  for (int64_t r = 0; r < f.rows(); ++r) {
    if (!rng->Bernoulli(p_a)) continue;
    double* row = out.row_data(r);
    // Relocate each set bit to a random column.
    std::vector<int64_t> set_bits;
    for (int64_t c = 0; c < m; ++c) {
      if (row[c] != 0.0) set_bits.push_back(c);
    }
    for (int64_t c : set_bits) row[c] = 0.0;
    for (size_t i = 0; i < set_bits.size(); ++i) {
      row[rng->UniformInt(m)] = 1.0;
    }
  }
  return out;
}

Matrix PerturbRealAttributes(const Matrix& f, double p_a, Rng* rng) {
  Matrix out = f;
  for (int64_t i = 0; i < out.size(); ++i) {
    double delta = rng->Uniform() * p_a * std::fabs(out.data()[i]);
    out.data()[i] += rng->Bernoulli(0.5) ? delta : -delta;
  }
  return out;
}

bool IsBinaryMatrix(const Matrix& f) {
  for (int64_t i = 0; i < f.size(); ++i) {
    double v = f.data()[i];
    if (v != 0.0 && v != 1.0) return false;
  }
  return true;
}

int64_t AlignmentPair::NumAnchors() const {
  int64_t n = 0;
  for (int64_t t : ground_truth) {
    if (t != -1) ++n;
  }
  return n;
}

Result<AlignmentPair> MakeNoisyCopyPair(const AttributedGraph& g,
                                        const NoisyCopyOptions& opts,
                                        Rng* rng) {
  AttributedGraph noisy = g;
  if (opts.structural_noise > 0.0) {
    auto r = PerturbStructure(noisy, opts.structural_noise, rng);
    if (!r.ok()) return r.status();
    noisy = r.MoveValueOrDie();
  }
  if (opts.attribute_noise > 0.0) {
    Matrix f = IsBinaryMatrix(noisy.attributes())
                   ? PerturbBinaryAttributes(noisy.attributes(),
                                             opts.attribute_noise, rng)
                   : PerturbRealAttributes(noisy.attributes(),
                                           opts.attribute_noise, rng);
    auto r = noisy.WithAttributes(std::move(f));
    if (!r.ok()) return r.status();
    noisy = r.MoveValueOrDie();
  }
  AlignmentPair pair;
  pair.source = g;
  if (opts.permute) {
    std::vector<int64_t> perm = rng->Permutation(g.num_nodes());
    auto r = noisy.Permuted(perm);
    if (!r.ok()) return r.status();
    pair.target = r.MoveValueOrDie();
    pair.ground_truth = perm;
  } else {
    pair.target = std::move(noisy);
    pair.ground_truth.resize(g.num_nodes());
    for (int64_t v = 0; v < g.num_nodes(); ++v) pair.ground_truth[v] = v;
  }
  return pair;
}

Result<AlignmentPair> MakeOverlapPair(const AttributedGraph& g, double overlap,
                                      const NoisyCopyOptions& opts, Rng* rng) {
  if (overlap <= 0.0 || overlap > 1.0) {
    return Status::InvalidArgument("overlap must be in (0, 1]");
  }
  const int64_t n = g.num_nodes();
  const int64_t shared = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(overlap * static_cast<double>(n))));
  const int64_t exclusive = (n - shared) / 2;

  std::vector<int64_t> order = rng->Permutation(n);
  std::vector<int64_t> shared_nodes(order.begin(), order.begin() + shared);
  std::vector<int64_t> source_only(order.begin() + shared,
                                   order.begin() + shared + exclusive);
  std::vector<int64_t> target_only(
      order.begin() + shared + exclusive,
      order.begin() + shared + exclusive + exclusive);

  std::vector<int64_t> source_nodes = shared_nodes;
  source_nodes.insert(source_nodes.end(), source_only.begin(),
                      source_only.end());
  std::vector<int64_t> target_nodes = shared_nodes;
  target_nodes.insert(target_nodes.end(), target_only.begin(),
                      target_only.end());

  auto src = g.InducedSubgraph(source_nodes);
  if (!src.ok()) return src.status();
  auto tgt_raw = g.InducedSubgraph(target_nodes);
  if (!tgt_raw.ok()) return tgt_raw.status();

  // Apply noise to the target side, then permute its labels.
  NoisyCopyOptions copy_opts = opts;
  copy_opts.permute = true;
  auto noisy = MakeNoisyCopyPair(tgt_raw.ValueOrDie(), copy_opts, rng);
  if (!noisy.ok()) return noisy.status();
  AlignmentPair inner = noisy.MoveValueOrDie();

  AlignmentPair pair;
  pair.source = src.MoveValueOrDie();
  pair.target = std::move(inner.target);
  pair.ground_truth.assign(pair.source.num_nodes(), -1);
  // Source subgraph node i < shared corresponds to raw target node i, which
  // the inner pair relabeled to inner.ground_truth[i].
  for (int64_t i = 0; i < shared; ++i) {
    pair.ground_truth[i] = inner.ground_truth[i];
  }
  return pair;
}

}  // namespace galign
