// k-core decomposition (Batagelj–Zaveršnik O(E) peeling): the core number
// of a node is the largest k such that it belongs to a subgraph where every
// node has degree >= k. Core numbers are permutation-equivariant structural
// identities — a cheap complement to degree histograms for alignment
// features — and the k-core itself is a standard densest-region extractor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace galign {

/// Core number of every node.
std::vector<int64_t> CoreNumbers(const AttributedGraph& g);

/// Largest k with a non-empty k-core.
int64_t Degeneracy(const AttributedGraph& g);

/// Node ids of the k-core (nodes with core number >= k), ascending.
std::vector<int64_t> KCore(const AttributedGraph& g, int64_t k);

/// The k-core as an induced subgraph.
[[nodiscard]] Result<AttributedGraph> KCoreSubgraph(const AttributedGraph& g, int64_t k);

}  // namespace galign
