// Noise injection on attributed graphs (paper §V-C): structural noise (edge
// removal/addition via a zero-mask on the adjacency) and attribute noise
// (bit repositioning for binary attributes, relative jitter for real-valued
// attributes). Also the alignment-pair synthesizers: noisy-copy pairs (the
// paper's synthetic-data procedure for bn/econ/email) and overlapping
// subgraph pairs (the isomorphic-level experiment, Fig. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace galign {

/// Removes each edge independently with probability ratio.
[[nodiscard]] Result<AttributedGraph> RemoveEdges(const AttributedGraph& g, double ratio,
                                    Rng* rng);

/// Adds approximately ratio * |E| random non-existing edges.
[[nodiscard]] Result<AttributedGraph> AddRandomEdges(const AttributedGraph& g, double ratio,
                                       Rng* rng);

/// Structural perturbation per §V-C: each existing edge is dropped with
/// probability p_s and an equal expected number of spurious edges is added.
[[nodiscard]] Result<AttributedGraph> PerturbStructure(const AttributedGraph& g, double p_s,
                                         Rng* rng);

/// Binary attribute noise: with probability p_a per row, relocates each
/// non-zero entry to a random column (paper: "randomly change the position
/// of non-zero entries").
Matrix PerturbBinaryAttributes(const Matrix& f, double p_a, Rng* rng);

/// Real-valued attribute noise: adjusts each entry by a random amount in
/// [0, p_a * |F_ij|] with random sign.
Matrix PerturbRealAttributes(const Matrix& f, double p_a, Rng* rng);

/// True iff every entry of f is 0 or 1 (drives which perturbation applies).
bool IsBinaryMatrix(const Matrix& f);

/// \brief A source/target pair with ground-truth anchor links.
///
/// ground_truth[v] is the target-side anchor of source node v, or -1 when
/// the source node has no counterpart (partial overlap settings).
struct AlignmentPair {
  AttributedGraph source;
  AttributedGraph target;
  std::vector<int64_t> ground_truth;

  /// Number of anchor links (ground_truth entries != -1).
  int64_t NumAnchors() const;
};

/// Options controlling noisy-copy synthesis.
struct NoisyCopyOptions {
  double structural_noise = 0.0;  // p_s
  double attribute_noise = 0.0;   // p_a
  bool permute = true;            // relabel target nodes randomly
};

/// \brief Builds the paper's synthetic alignment workload: the target is a
/// permuted copy of `g` with structural and attribute noise applied; node
/// identity is preserved through the permutation and recorded as ground
/// truth (§VII-A "Synthetic data").
[[nodiscard]] Result<AlignmentPair> MakeNoisyCopyPair(const AttributedGraph& g,
                                        const NoisyCopyOptions& opts,
                                        Rng* rng);

/// \brief Builds the isomorphic-level workload (Fig. 5): source and target
/// are induced subgraphs of `g` sharing `overlap` fraction of the original
/// nodes; non-shared nodes appear in only one side.
[[nodiscard]] Result<AlignmentPair> MakeOverlapPair(const AttributedGraph& g, double overlap,
                                      const NoisyCopyOptions& opts, Rng* rng);

}  // namespace galign
