#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace galign {

Status SaveEdgeList(const AttributedGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# nodes=" << g.num_nodes() << "\n";
  for (const auto& [u, v] : g.edges()) {
    out << u << " " << v << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<AttributedGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<Edge> edges;
  int64_t num_nodes = -1;
  int64_t max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      auto pos = line.find("nodes=");
      if (pos != std::string::npos) {
        num_nodes = std::stoll(line.substr(pos + 6));
      }
      continue;
    }
    std::istringstream ls(line);
    int64_t u, v;
    if (!(ls >> u >> v)) {
      return Status::IOError("malformed edge line: '" + line + "'");
    }
    if (u < 0 || v < 0) {
      return Status::IOError("negative node id in: '" + line + "'");
    }
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  if (num_nodes < 0) num_nodes = max_id + 1;
  return AttributedGraph::Create(num_nodes, std::move(edges), Matrix());
}

Status SaveAttributes(const Matrix& attributes, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.precision(17);
  for (int64_t r = 0; r < attributes.rows(); ++r) {
    for (int64_t c = 0; c < attributes.cols(); ++c) {
      if (c) out << "\t";
      out << attributes(r, c);
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Matrix> LoadAttributes(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t width = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<double> row;
    double v;
    while (ls >> v) row.push_back(v);
    if (rows.empty()) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::IOError("ragged attribute row in " + path);
    }
    rows.push_back(std::move(row));
  }
  Matrix m(static_cast<int64_t>(rows.size()), static_cast<int64_t>(width));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      m(static_cast<int64_t>(r), static_cast<int64_t>(c)) = rows[r][c];
    }
  }
  return m;
}

Status SaveGroundTruth(const std::vector<int64_t>& ground_truth,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (size_t v = 0; v < ground_truth.size(); ++v) {
    if (ground_truth[v] != -1) {
      out << v << " " << ground_truth[v] << "\n";
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<int64_t>> LoadGroundTruth(const std::string& path,
                                             int64_t num_source_nodes) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<int64_t> gt(num_source_nodes, -1);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t s, t;
    if (!(ls >> s >> t)) {
      return Status::IOError("malformed ground-truth line: '" + line + "'");
    }
    if (s < 0 || s >= num_source_nodes) {
      return Status::IOError("ground-truth source out of range");
    }
    gt[s] = t;
  }
  return gt;
}

}  // namespace galign
