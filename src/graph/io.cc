#include "graph/io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/durable_io.h"
#include "common/fault.h"
#include "common/parse.h"

namespace galign {

Status SaveEdgeList(const AttributedGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# nodes=" << g.num_nodes() << "\n";
  for (const auto& [u, v] : g.edges()) {
    out << u << " " << v << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<AttributedGraph> LoadEdgeList(const std::string& path) {
  // Transient read faults get a bounded, jittered retry; malformed content
  // fails on the first attempt.
  auto content =
      RetryTransientResult(RetryPolicy{}, [&]() -> Result<std::string> {
        if (fault::ShouldFailIO("io.edges.load")) {
          return Status::IOError("injected fault: cannot read edge list " +
                                 path);
        }
        return ReadFileToString(path);
      });
  GALIGN_RETURN_NOT_OK(content.status());
  std::istringstream in(content.ValueOrDie());
  std::vector<Edge> edges;
  int64_t num_nodes = -1;
  int64_t max_id = -1;
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      auto pos = line.find("nodes=");
      if (pos != std::string::npos) {
        std::string value = line.substr(pos + 6);
        value = value.substr(0, value.find_first_of(" \t\r"));
        auto parsed = ParseInt64(value, "node count");
        if (!parsed.ok()) {
          return Status::IOError(path + ":" + std::to_string(lineno) + ": " +
                                 parsed.status().message());
        }
        num_nodes = parsed.ValueOrDie();
        if (num_nodes < 0) {
          return Status::IOError(path + ":" + std::to_string(lineno) +
                                 ": negative node count " +
                                 std::to_string(num_nodes));
        }
      }
      continue;
    }
    std::istringstream ls(line);
    int64_t u, v;
    if (!(ls >> u >> v)) {
      return Status::IOError(path + ":" + std::to_string(lineno) +
                             ": malformed edge line: '" + line + "'");
    }
    if (u < 0 || v < 0) {
      return Status::IOError(path + ":" + std::to_string(lineno) +
                             ": negative node id in: '" + line + "'");
    }
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  if (num_nodes < 0) {
    // max_id + 1 would overflow for an id of INT64_MAX.
    if (max_id == std::numeric_limits<int64_t>::max()) {
      return Status::IOError(path + ": node id " + std::to_string(max_id) +
                             " too large");
    }
    num_nodes = max_id + 1;
  }
  if (max_id >= num_nodes) {
    return Status::IOError(path + ": edge endpoint " + std::to_string(max_id) +
                           " exceeds declared node count " +
                           std::to_string(num_nodes));
  }
  return AttributedGraph::Create(num_nodes, std::move(edges), Matrix());
}

Status SaveAttributes(const Matrix& attributes, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.precision(17);
  for (int64_t r = 0; r < attributes.rows(); ++r) {
    for (int64_t c = 0; c < attributes.cols(); ++c) {
      if (c) out << "\t";
      out << attributes(r, c);
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Matrix> LoadAttributes(const std::string& path) {
  auto content =
      RetryTransientResult(RetryPolicy{}, [&]() -> Result<std::string> {
        if (fault::ShouldFailIO("io.attrs.load")) {
          return Status::IOError("injected fault: cannot read attributes " +
                                 path);
        }
        return ReadFileToString(path);
      });
  GALIGN_RETURN_NOT_OK(content.status());
  std::istringstream in(content.ValueOrDie());
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t width = 0;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<double> row;
    std::string tok;
    while (ls >> tok) {
      auto v = ParseDouble(tok, "attribute value");
      if (!v.ok()) {
        return Status::IOError(path + ":" + std::to_string(lineno) + ": " +
                               v.status().message());
      }
      if (!std::isfinite(v.ValueOrDie())) {
        return Status::IOError(path + ":" + std::to_string(lineno) +
                               ": non-finite attribute value '" + tok + "'");
      }
      row.push_back(v.ValueOrDie());
    }
    if (rows.empty()) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::IOError(path + ":" + std::to_string(lineno) +
                             ": ragged attribute row (expected " +
                             std::to_string(width) + " columns, got " +
                             std::to_string(row.size()) + ")");
    }
    rows.push_back(std::move(row));
  }
  Matrix m(static_cast<int64_t>(rows.size()), static_cast<int64_t>(width));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      m(static_cast<int64_t>(r), static_cast<int64_t>(c)) = rows[r][c];
    }
  }
  return m;
}

Status SaveGroundTruth(const std::vector<int64_t>& ground_truth,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (size_t v = 0; v < ground_truth.size(); ++v) {
    if (ground_truth[v] != -1) {
      out << v << " " << ground_truth[v] << "\n";
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<int64_t>> LoadGroundTruth(const std::string& path,
                                             int64_t num_source_nodes) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<int64_t> gt(num_source_nodes, -1);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t s, t;
    if (!(ls >> s >> t)) {
      return Status::IOError(path + ": malformed ground-truth line: '" + line +
                             "'");
    }
    if (s < 0 || s >= num_source_nodes) {
      return Status::IOError(path + ": ground-truth source " +
                             std::to_string(s) + " out of range [0, " +
                             std::to_string(num_source_nodes) + ")");
    }
    if (t < 0) {
      return Status::IOError(path + ": negative ground-truth target " +
                             std::to_string(t) + " for source " +
                             std::to_string(s));
    }
    gt[s] = t;
  }
  return gt;
}

}  // namespace galign
