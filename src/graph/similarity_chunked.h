// Row-blocked, top-k-streaming similarity computation (DESIGN.md §9).
//
// The dense alignment matrix S = sum_l theta_l H_s^(l) H_t^(l)T is the
// dominant memory cost of every embedding-based aligner: O(n1 * n2) doubles
// that exist only to be ranked row-by-row afterwards. When an n1 x n2
// materialization does not fit the run's MemoryBudget, these kernels
// compute S in row blocks sized to the remaining budget and keep only the
// top-k column indices/scores per row — O(n1 * k) output, O(block * n2)
// transient working set — which is exactly what Success@q, MAP@k, and
// anchor extraction consume. This is the standard implicit-similarity
// answer of the scalable-alignment literature (REGAL's xNetMF, GAlign
// §VI-C's O(n) space argument).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// \brief Compressed alignment: per source row, the k best target columns.
///
/// Rows beyond `rows_computed` (budget/deadline wind-down) and padding
/// entries within a row hold index -1. Scores are descending per row.
struct TopKAlignment {
  int64_t rows = 0;
  int64_t cols = 0;  ///< width of the implicit dense matrix
  int64_t k = 0;
  /// How many leading rows hold valid entries. Equal to `rows` on a
  /// complete run; smaller when the RunContext stopped the scan early.
  int64_t rows_computed = 0;
  std::vector<int64_t> index;  ///< rows * k, row-major, -1 = empty slot
  std::vector<double> score;   ///< rows * k, descending within a row

  /// Best target for `row` (-1 when the row has no entries).
  int64_t Top1(int64_t row) const;
  /// Rank (1-based) of `col` within the stored entries of `row`, or -1
  /// when the column did not make the row's top-k.
  int64_t RankOf(int64_t row, int64_t col) const;
  /// Materializes the dense matrix with `fill` in unstored cells (tests
  /// and small-scale interop only — this re-creates the O(rows*cols) cost
  /// the chunked path exists to avoid).
  [[nodiscard]] Result<Matrix> ToDense(double fill = 0.0) const;
};

/// Fills `block` (pre-shaped nrows x cols) with similarity rows
/// [row0, row0 + nrows). Returning non-OK aborts the scan.
using RowBlockFiller =
    std::function<Status(int64_t row0, int64_t nrows, Matrix* block)>;

/// \brief Generic row-blocked top-k scan.
///
/// Streams the implicit rows x cols similarity matrix through a
/// block_rows x cols buffer produced by `fill`, keeping the top k entries
/// of each row. Reserves the buffer + output against ctx.budget() (when
/// set) and polls ctx.ShouldStop() between blocks: an expired context
/// returns the rows computed so far (rows_computed < rows), never an
/// error.
[[nodiscard]] Result<TopKAlignment> ChunkedTopK(int64_t rows, int64_t cols, int64_t k,
                                  int64_t block_rows,
                                  const RowBlockFiller& fill,
                                  const RunContext& ctx = RunContext());

/// \brief Multi-order embedding alignment, chunked: the top-k of
/// S = sum_l theta_l hs[l] ht[l]^T without materializing any n1 x n2
/// matrix (Eq. 12 under a memory budget).
///
/// The block size is derived from ctx.budget()'s remaining headroom (a
/// cache-friendly default when unbounded); fails with ResourceExhausted
/// only when even a single-row block plus the O(n1 * k) output does not
/// fit.
[[nodiscard]] Result<TopKAlignment> ChunkedEmbeddingTopK(const std::vector<Matrix>& hs,
                                           const std::vector<Matrix>& ht,
                                           const std::vector<double>& theta,
                                           int64_t k,
                                           const RunContext& ctx =
                                               RunContext());

/// Compresses an already-materialized dense matrix to its per-row top-k
/// (the degradation adapter for methods without a chunked kernel).
TopKAlignment TopKFromDense(const Matrix& s, int64_t k);

/// \brief Block height a budgeted scan over `rows` rows can afford when
/// each block row costs `row_bytes` of transient working set on top of the
/// fixed TopKOutputBytes(rows, k) output.
///
/// The cache-friendly default (512) when ctx carries no finite budget;
/// ResourceExhausted when even a single-row block does not fit the
/// remaining headroom.
[[nodiscard]] Result<int64_t> BudgetedBlockRows(int64_t rows, int64_t k, uint64_t row_bytes,
                                  const RunContext& ctx);

/// Bytes of transient working set the chunked embedding scan needs per
/// block row: one similarity row plus one row of every layer embedding.
uint64_t ChunkedRowBytes(int64_t cols, const std::vector<Matrix>& hs);

/// Bytes of the O(rows * k) top-k output (index + score arrays).
uint64_t TopKOutputBytes(int64_t rows, int64_t k);

}  // namespace galign
