#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/rng.h"

namespace galign {

namespace {

// Union-find with path compression.
struct DisjointSet {
  std::vector<int64_t> parent;
  explicit DisjointSet(int64_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int64_t Find(int64_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(int64_t a, int64_t b) { parent[Find(a)] = Find(b); }
};

}  // namespace

int64_t CountConnectedComponents(const AttributedGraph& g) {
  DisjointSet ds(g.num_nodes());
  for (const auto& [u, v] : g.edges()) ds.Union(u, v);
  int64_t count = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    if (ds.Find(v) == v) ++count;
  }
  return count;
}

std::vector<int64_t> DegreeHistogram(const AttributedGraph& g) {
  int64_t max_deg = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  std::vector<int64_t> hist(max_deg + 1, 0);
  for (int64_t v = 0; v < g.num_nodes(); ++v) hist[g.Degree(v)]++;
  return hist;
}

GraphStats ComputeStats(const AttributedGraph& g, int64_t clustering_samples) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.num_attributes = g.num_attributes();
  s.avg_degree = g.AverageDegree();
  if (g.num_nodes() == 0) return s;

  s.min_degree = g.num_nodes();
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    int64_t d = g.Degree(v);
    s.max_degree = std::max(s.max_degree, d);
    s.min_degree = std::min(s.min_degree, d);
    if (d == 0) ++s.isolated_nodes;
  }

  // Degree assortativity (Pearson correlation of endpoint degrees).
  if (g.num_edges() > 1) {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const double m = static_cast<double>(2 * g.num_edges());
    for (const auto& [u, v] : g.edges()) {
      // Count both edge orientations to keep the measure symmetric.
      double du = static_cast<double>(g.Degree(u));
      double dv = static_cast<double>(g.Degree(v));
      sx += du + dv;
      sy += dv + du;
      sxx += du * du + dv * dv;
      syy += dv * dv + du * du;
      sxy += 2 * du * dv;
    }
    double cov = sxy / m - (sx / m) * (sy / m);
    double var = sxx / m - (sx / m) * (sx / m);
    s.degree_assortativity = var > 1e-12 ? cov / var : 0.0;
  }

  // Sampled average clustering coefficient.
  Rng rng(123);
  std::vector<int64_t> sample;
  if (g.num_nodes() <= clustering_samples) {
    sample.resize(g.num_nodes());
    std::iota(sample.begin(), sample.end(), 0);
  } else {
    sample = rng.SampleWithoutReplacement(g.num_nodes(), clustering_samples);
  }
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t v : sample) {
    auto nbrs = g.Neighbors(v);
    if (nbrs.size() < 2) continue;
    int64_t links = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++links;
      }
    }
    double possible =
        static_cast<double>(nbrs.size()) * (nbrs.size() - 1) / 2.0;
    total += static_cast<double>(links) / possible;
    ++counted;
  }
  s.avg_clustering = counted > 0 ? total / counted : 0.0;
  s.connected_components = CountConnectedComponents(g);
  return s;
}

std::string StatsToString(const GraphStats& s) {
  std::ostringstream os;
  os << "n=" << s.num_nodes << " e=" << s.num_edges
     << " attrs=" << s.num_attributes << " avg_deg=" << s.avg_degree
     << " max_deg=" << s.max_degree << " isolated=" << s.isolated_nodes
     << " cc=" << s.connected_components
     << " clustering=" << s.avg_clustering
     << " assortativity=" << s.degree_assortativity;
  return os.str();
}

}  // namespace galign
