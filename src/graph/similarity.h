// Whole-network comparison measures (the classical "network matching"
// problem of the paper's related work §VIII-A): degree-distribution
// divergence, spectral distance, and edge overlap. Used to validate that
// synthesized dataset stand-ins live in the intended regime and as cheap
// similarity baselines in tests.
#pragma once

#include "common/status.h"
#include "graph/graph.h"

namespace galign {

/// Jensen-Shannon divergence between the two graphs' degree distributions
/// (in [0, log 2]; 0 = identical distributions).
double DegreeDistributionDivergence(const AttributedGraph& a,
                                    const AttributedGraph& b);

/// \brief Spectral distance: L2 distance between the k largest-magnitude
/// eigenvalues of the normalized adjacencies (padded with zeros when the
/// graphs have different sizes).
///
/// Dense eigendecomposition — intended for graphs up to a few thousand
/// nodes.
[[nodiscard]] Result<double> SpectralDistance(const AttributedGraph& a,
                                const AttributedGraph& b, int64_t k = 16);

/// Jaccard overlap of edge sets under an explicit node correspondence:
/// |E_a ∩ map(E_b)| / |E_a ∪ map(E_b)|. correspondence[v] maps a-node v to
/// a b-node (-1 entries and their edges are ignored on both sides).
double EdgeOverlap(const AttributedGraph& a, const AttributedGraph& b,
                   const std::vector<int64_t>& correspondence);

/// Average attribute cosine between corresponding nodes (-1 entries
/// skipped); 1.0 = attribute-consistent alignment (paper §II-C).
double AttributeAgreement(const AttributedGraph& a, const AttributedGraph& b,
                          const std::vector<int64_t>& correspondence);

/// Fraction of preserved relations: of the edges in `a` whose two endpoints
/// are both mapped, how many map onto edges of `b` — the structural
/// consistency rate of an alignment (paper §II-C homophily rule).
double StructuralConsistency(const AttributedGraph& a,
                             const AttributedGraph& b,
                             const std::vector<int64_t>& correspondence);

}  // namespace galign
