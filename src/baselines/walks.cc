#include "baselines/walks.h"

#include <algorithm>

namespace galign {

std::vector<std::vector<int64_t>> UniformWalks(const AttributedGraph& g,
                                               const WalkConfig& cfg,
                                               Rng* rng) {
  std::vector<std::vector<int64_t>> walks;
  walks.reserve(static_cast<size_t>(g.num_nodes()) * cfg.walks_per_node);
  for (int w = 0; w < cfg.walks_per_node; ++w) {
    for (int64_t start = 0; start < g.num_nodes(); ++start) {
      std::vector<int64_t> walk{start};
      int64_t cur = start;
      for (int step = 1; step < cfg.walk_length; ++step) {
        auto nbrs = g.Neighbors(cur);
        if (nbrs.empty()) break;
        cur = nbrs[rng->UniformInt(static_cast<int64_t>(nbrs.size()))];
        walk.push_back(cur);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::vector<int64_t>> Node2VecWalks(const AttributedGraph& g,
                                                const WalkConfig& cfg,
                                                double p, double q, Rng* rng) {
  std::vector<std::vector<int64_t>> walks;
  walks.reserve(static_cast<size_t>(g.num_nodes()) * cfg.walks_per_node);
  // Max unnormalized weight bounds the rejection sampler.
  const double w_return = 1.0 / p;
  const double w_inout = 1.0 / q;
  const double w_max = std::max({w_return, 1.0, w_inout});
  for (int w = 0; w < cfg.walks_per_node; ++w) {
    for (int64_t start = 0; start < g.num_nodes(); ++start) {
      std::vector<int64_t> walk{start};
      int64_t prev = -1, cur = start;
      for (int step = 1; step < cfg.walk_length; ++step) {
        auto nbrs = g.Neighbors(cur);
        if (nbrs.empty()) break;
        int64_t next = -1;
        if (prev == -1) {
          next = nbrs[rng->UniformInt(static_cast<int64_t>(nbrs.size()))];
        } else {
          // Rejection sampling against the node2vec bias.
          for (int attempt = 0; attempt < 200; ++attempt) {
            int64_t cand =
                nbrs[rng->UniformInt(static_cast<int64_t>(nbrs.size()))];
            double weight = cand == prev
                                ? w_return
                                : (g.HasEdge(prev, cand) ? 1.0 : w_inout);
            if (rng->Uniform() * w_max <= weight) {
              next = cand;
              break;
            }
          }
          if (next == -1) {
            next = nbrs[rng->UniformInt(static_cast<int64_t>(nbrs.size()))];
          }
        }
        walk.push_back(next);
        prev = cur;
        cur = next;
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::vector<int64_t>> CrossNetworkWalks(
    const AttributedGraph& source, const AttributedGraph& target,
    const std::vector<int64_t>& anchors, const WalkConfig& cfg, Rng* rng) {
  const int64_t n1 = source.num_nodes();
  // Reverse anchor map: target node -> source node.
  std::vector<int64_t> reverse(target.num_nodes(), -1);
  for (size_t v = 0; v < anchors.size(); ++v) {
    if (anchors[v] != -1 && anchors[v] < target.num_nodes()) {
      reverse[anchors[v]] = static_cast<int64_t>(v);
    }
  }
  auto token_of = [&](bool in_source, int64_t node) {
    if (in_source) return node;
    // Anchored target nodes share the source token (merged vocabulary).
    return reverse[node] != -1 ? reverse[node] : n1 + node;
  };

  std::vector<std::vector<int64_t>> walks;
  walks.reserve(static_cast<size_t>(n1 + target.num_nodes()) *
                cfg.walks_per_node);
  auto run_walk = [&](bool start_in_source, int64_t start) {
    std::vector<int64_t> walk{token_of(start_in_source, start)};
    bool in_source = start_in_source;
    int64_t cur = start;
    for (int step = 1; step < cfg.walk_length; ++step) {
      // Cross-network jump at an anchored node.
      if (in_source && cur < static_cast<int64_t>(anchors.size()) &&
          anchors[cur] != -1 && rng->Bernoulli(cfg.cross_probability)) {
        cur = anchors[cur];
        in_source = false;
      } else if (!in_source && reverse[cur] != -1 &&
                 rng->Bernoulli(cfg.cross_probability)) {
        cur = reverse[cur];
        in_source = true;
      }
      const AttributedGraph& g = in_source ? source : target;
      auto nbrs = g.Neighbors(cur);
      if (nbrs.empty()) break;
      cur = nbrs[rng->UniformInt(static_cast<int64_t>(nbrs.size()))];
      walk.push_back(token_of(in_source, cur));
    }
    walks.push_back(std::move(walk));
  };

  for (int w = 0; w < cfg.walks_per_node; ++w) {
    for (int64_t v = 0; v < n1; ++v) run_walk(true, v);
    for (int64_t v = 0; v < target.num_nodes(); ++v) run_walk(false, v);
  }
  return walks;
}

}  // namespace galign
