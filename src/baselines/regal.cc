#include "baselines/regal.h"

#include "la/ops.h"

namespace galign {

Result<Matrix> RegalAligner::Align(const AttributedGraph& source,
                                   const AttributedGraph& target,
                                   const Supervision& supervision,
                                   const RunContext& ctx) {
  (void)supervision;  // REGAL is unsupervised
  auto embed = XNetMfEmbed(source, target, config_, &ctx);
  GALIGN_RETURN_NOT_OK(embed.status());
  const Matrix& y = embed.ValueOrDie();
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  Matrix ys = y.Block(0, 0, n1, y.cols());
  Matrix yt = y.Block(n1, 0, n2, y.cols());
  // Rows are unit-normalized by XNetMfEmbed, so this is cosine similarity.
  return MatMulTransposedB(ys, yt);
}

}  // namespace galign
