#include "baselines/regal.h"

#include <algorithm>
#include <cmath>

#include "graph/ann/ann.h"
#include "la/ops.h"

namespace galign {

namespace {

// p, the landmark count XNetMfEmbed derives when cfg.num_landmarks == 0.
int64_t EffectiveLandmarks(const XNetMfConfig& cfg, int64_t total_nodes) {
  if (cfg.num_landmarks > 0) return std::min(cfg.num_landmarks, total_nodes);
  if (total_nodes <= 1) return total_nodes;
  return std::min<int64_t>(
      total_nodes,
      static_cast<int64_t>(10.0 * std::log2(static_cast<double>(total_nodes))));
}

}  // namespace

Result<Matrix> RegalAligner::Align(const AttributedGraph& source,
                                   const AttributedGraph& target,
                                   const Supervision& supervision,
                                   const RunContext& ctx) {
  (void)supervision;  // REGAL is unsupervised
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  auto embed = XNetMfEmbed(source, target, config_, &ctx);
  GALIGN_RETURN_NOT_OK(embed.status());
  const Matrix& y = embed.ValueOrDie();
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  Matrix ys = y.Block(0, 0, n1, y.cols());
  Matrix yt = y.Block(n1, 0, n2, y.cols());
  // Rows are unit-normalized by XNetMfEmbed, so this is cosine similarity.
  return MatMulTransposedB(ys, yt);
}

uint64_t RegalAligner::EstimateEmbedBytes(int64_t n_source, int64_t n_target,
                                          int64_t dims) const {
  const int64_t n = n_source + n_target;
  const int64_t p = EffectiveLandmarks(config_, n);
  // Structural feature histograms grow with the largest binned degree; a
  // generous fixed bin count covers any realistic graph.
  const int64_t feat = 64 + dims;
  // Features, node-to-landmark similarity C, embeddings Y (plus the split
  // copies), and the small p x p factorization scratch.
  return DenseBytes(n, feat) + 3 * DenseBytes(n, p) + 4 * DenseBytes(p, p);
}

uint64_t RegalAligner::EstimatePeakBytes(int64_t n_source, int64_t n_target,
                                         int64_t dims) const {
  return EstimateEmbedBytes(n_source, n_target, dims) +
         2 * DenseBytes(n_source, n_target);
}

Result<TopKAlignment> RegalAligner::AlignTopK(const AttributedGraph& source,
                                              const AttributedGraph& target,
                                              const Supervision& supervision,
                                              const RunContext& ctx,
                                              int64_t k) {
  (void)supervision;  // REGAL is unsupervised
  // Admit only the embedding phase — this path never materializes the
  // n1 x n2 cosine matrix the dense estimate includes.
  MemoryScope embed_scope;
  if (ctx.HasMemoryLimit()) {
    GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
        ctx.budget(),
        EstimateEmbedBytes(source.num_nodes(), target.num_nodes(),
                           source.attributes().cols()),
        "REGAL embedding admission", &embed_scope));
  }
  auto embed = XNetMfEmbed(source, target, config_, &ctx);
  GALIGN_RETURN_NOT_OK(embed.status());
  const Matrix& y = embed.ValueOrDie();
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  std::vector<Matrix> hs, ht;
  hs.push_back(y.Block(0, 0, n1, y.cols()));
  ht.push_back(y.Block(n1, 0, n2, y.cols()));
  // Rows are unit-normalized, so the single-layer inner product is cosine —
  // exactly the metric the ANN backends index.
  if (ShouldUseAnn(ann_policy_, n1, n2)) {
    return AnnEmbeddingTopK(hs, ht, {1.0}, k, ann_policy_, ctx);
  }
  return ChunkedEmbeddingTopK(hs, ht, {1.0}, k, ctx);
}

}  // namespace galign
