#include "baselines/ione.h"

#include <algorithm>
#include <cmath>

#include "la/ops.h"

namespace galign {

namespace {

inline double FastSigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

Result<Matrix> IoneAligner::Align(const AttributedGraph& source,
                                  const AttributedGraph& target,
                                  const Supervision& supervision,
                                  const RunContext& ctx) {
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (supervision.seeds.empty()) {
    return Status::InvalidArgument(
        "IONE requires seed anchors to share embeddings across networks");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));

  // Token space: source node v -> v; target node u -> n1 + u, EXCEPT
  // anchored targets, which share the source token (hard parameter tying —
  // IONE's mechanism for a common embedding space).
  std::vector<int64_t> target_token(n2, -1);
  for (int64_t u = 0; u < n2; ++u) target_token[u] = n1 + u;
  for (const auto& [s, t] : supervision.seeds) {
    if (s < 0 || s >= n1 || t < 0 || t >= n2) {
      return Status::InvalidArgument("seed anchor out of range");
    }
    target_token[t] = s;
  }
  const int64_t vocab = n1 + n2;

  Rng rng(config_.seed);
  const int64_t d = config_.dim;
  Matrix identity = Matrix::Uniform(vocab, d, &rng, -0.5 / d, 0.5 / d);
  Matrix ctx_in(vocab, d);
  Matrix ctx_out(vocab, d);

  // Union edge list in token space, tagged with graph side for negative
  // sampling (negatives are drawn within the edge's own network).
  struct Tok {
    int64_t a, b;
    bool from_source;
  };
  std::vector<Tok> edges;
  edges.reserve(source.num_edges() + target.num_edges());
  for (const auto& [u, v] : source.edges()) edges.push_back({u, v, true});
  for (const auto& [u, v] : target.edges()) {
    edges.push_back({target_token[u], target_token[v], false});
  }

  auto random_token = [&](bool from_source) {
    return from_source ? rng.UniformInt(n1)
                       : target_token[rng.UniformInt(n2)];
  };

  std::vector<double> grad(d);
  const int64_t total_steps =
      std::max<int64_t>(1, static_cast<int64_t>(edges.size()) *
                               config_.epochs);
  int64_t step = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (ctx.ShouldStop()) break;  // best-so-far token embeddings
    rng.Shuffle(&edges);
    for (const Tok& e : edges) {
      double lr = config_.lr *
                  std::max(0.05, 1.0 - static_cast<double>(step++) /
                                           total_steps);
      // Second-order updates in both directions: u predicts v's input
      // context; v predicts u's output context.
      for (int dir = 0; dir < 2; ++dir) {
        int64_t center = dir == 0 ? e.a : e.b;
        int64_t context = dir == 0 ? e.b : e.a;
        Matrix& ctx_mat = dir == 0 ? ctx_in : ctx_out;
        double* zc = identity.row_data(center);
        std::fill(grad.begin(), grad.end(), 0.0);
        for (int ns = 0; ns <= config_.negatives; ++ns) {
          int64_t tgt = ns == 0 ? context : random_token(e.from_source);
          if (ns > 0 && tgt == context) continue;
          double label = ns == 0 ? 1.0 : 0.0;
          double* ct = ctx_mat.row_data(tgt);
          double dot = 0.0;
          for (int64_t k = 0; k < d; ++k) dot += zc[k] * ct[k];
          double g = (label - FastSigmoid(dot)) * lr;
          for (int64_t k = 0; k < d; ++k) {
            grad[k] += g * ct[k];
            ct[k] += g * zc[k];
          }
        }
        for (int64_t k = 0; k < d; ++k) zc[k] += grad[k];
      }
    }
  }

  identity.NormalizeRows();
  Matrix zs = identity.Block(0, 0, n1, d);
  Matrix zt(n2, d);
  for (int64_t u = 0; u < n2; ++u) {
    std::copy(identity.row_data(target_token[u]),
              identity.row_data(target_token[u]) + d, zt.row_data(u));
  }
  Matrix s = MatMulTransposedB(zs, zt);
  if (!s.AllFinite()) {
    return Status::Internal("IONE produced non-finite scores");
  }
  return s;
}

}  // namespace galign
