#include "baselines/netalign.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "la/ops.h"

namespace galign {

namespace {

// Key for the candidate hash: (source node, target node).
inline int64_t PairKey(int64_t i, int64_t j, int64_t n2) { return i * n2 + j; }

}  // namespace

Result<Matrix> NetAlignAligner::Align(const AttributedGraph& source,
                                      const AttributedGraph& target,
                                      const Supervision& supervision,
                                      const RunContext& ctx) {
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (config_.candidates_per_node < 1) {
    return Status::InvalidArgument("candidates_per_node must be >= 1");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));

  // Candidate recall decides everything downstream, so the prior always
  // includes attribute similarity; seeds boost their pair instead of
  // flattening the rest of the row.
  Matrix prior = AttributePrior(source, target);
  for (const auto& [s, t] : supervision.seeds) {
    if (s >= 0 && s < n1 && t >= 0 && t < n2) {
      prior(s, t) += 1.0;
    }
  }

  // --- Candidate generation: top-k prior entries per source node, plus
  // every seed pair, plus square-closure expansion from the seeds (pairs of
  // neighbours of existing candidates — NetAlign's "sparse L" grown along
  // plausible overlapped edges).
  struct Candidate {
    int64_t i, j;
    double w;
  };
  std::vector<Candidate> cands;
  std::unordered_map<int64_t, int64_t> cand_index;  // PairKey -> index
  auto add_candidate = [&](int64_t i, int64_t j, double w) {
    int64_t key = PairKey(i, j, n2);
    if (cand_index.emplace(key, static_cast<int64_t>(cands.size())).second) {
      cands.push_back({i, j, w});
    }
  };
  const int64_t k = std::min<int64_t>(config_.candidates_per_node, n2);
  for (int64_t i = 0; i < n1; ++i) {
    for (int64_t j : TopKRow(prior, i, k)) {
      add_candidate(i, j, prior(i, j));
    }
  }
  for (const auto& [s, t] : supervision.seeds) {
    if (s >= 0 && s < n1 && t >= 0 && t < n2) {
      add_candidate(s, t, prior(s, t));
    }
  }
  // Square-closure expansion: two rounds of proposing neighbour pairs of
  // current candidates, capped per source row.
  std::vector<int64_t> row_count(n1, 0);
  for (const Candidate& c : cands) row_count[c.i]++;
  const int64_t row_cap = 2 * k;
  size_t frontier_begin = 0;
  for (int round = 0; round < 2; ++round) {
    const size_t frontier_end = cands.size();
    for (size_t c = frontier_begin; c < frontier_end; ++c) {
      const int64_t ci = cands[c].i, cj = cands[c].j;
      for (int64_t i2 : source.Neighbors(ci)) {
        if (row_count[i2] >= row_cap) continue;
        for (int64_t j2 : target.Neighbors(cj)) {
          if (row_count[i2] >= row_cap) break;
          int64_t key = PairKey(i2, j2, n2);
          if (cand_index.emplace(key, static_cast<int64_t>(cands.size()))
                  .second) {
            cands.push_back({i2, j2, prior(i2, j2)});
            row_count[i2]++;
          }
        }
      }
    }
    frontier_begin = frontier_end;
  }
  const int64_t m = static_cast<int64_t>(cands.size());

  // --- Square enumeration: candidate c' = (i', j') supports c = (i, j)
  // when (i,i') in E_s and (j,j') in E_t.
  std::vector<std::vector<int64_t>> squares(m);
  for (int64_t c = 0; c < m; ++c) {
    for (int64_t i2 : source.Neighbors(cands[c].i)) {
      for (int64_t j2 : target.Neighbors(cands[c].j)) {
        auto it = cand_index.find(PairKey(i2, j2, n2));
        if (it != cand_index.end()) squares[c].push_back(it->second);
      }
    }
  }

  // --- Competitive max-product iterations. Beliefs start at the prior
  // reward; each round adds clamped square support and subtracts the
  // strongest same-row / same-column competitor (the matching constraint).
  std::vector<double> belief(m), raw(m);
  for (int64_t c = 0; c < m; ++c) {
    belief[c] = config_.alpha * cands[c].w;
    // Also seed `raw` so a run stopped before its first iteration emits the
    // prior-weighted candidates instead of an all-zero score set.
    raw[c] = belief[c];
  }

  std::vector<double> row_best(n1), row_second(n1);
  std::vector<double> col_best(n2), col_second(n2);
  const double kNegInf = -1e300;
  for (int iter = 0; iter < config_.iterations; ++iter) {
    if (ctx.ShouldStop()) break;  // best-so-far beliefs
    for (int64_t c = 0; c < m; ++c) {
      double support = 0.0;
      for (int64_t c2 : squares[c]) {
        support += std::clamp(belief[c2], 0.0, config_.beta);
      }
      raw[c] = config_.alpha * cands[c].w + support;
    }
    // Strongest and second-strongest raw score per row and column (the
    // second value provides the correct competitor for the best entry).
    std::fill(row_best.begin(), row_best.end(), kNegInf);
    std::fill(row_second.begin(), row_second.end(), kNegInf);
    std::fill(col_best.begin(), col_best.end(), kNegInf);
    std::fill(col_second.begin(), col_second.end(), kNegInf);
    for (int64_t c = 0; c < m; ++c) {
      double v = raw[c];
      int64_t i = cands[c].i, j = cands[c].j;
      if (v > row_best[i]) {
        row_second[i] = row_best[i];
        row_best[i] = v;
      } else if (v > row_second[i]) {
        row_second[i] = v;
      }
      if (v > col_best[j]) {
        col_second[j] = col_best[j];
        col_best[j] = v;
      } else if (v > col_second[j]) {
        col_second[j] = v;
      }
    }
    for (int64_t c = 0; c < m; ++c) {
      int64_t i = cands[c].i, j = cands[c].j;
      double row_comp = raw[c] == row_best[i] ? row_second[i] : row_best[i];
      double col_comp = raw[c] == col_best[j] ? col_second[j] : col_best[j];
      double competitor = std::max(row_comp, col_comp);
      if (competitor <= kNegInf) competitor = 0.0;  // no competition
      double updated = raw[c] - std::max(0.0, competitor);
      belief[c] = config_.damping * belief[c] +
                  (1.0 - config_.damping) * updated;
    }
  }

  // --- Emit the score matrix: candidates carry their final raw score
  // (shifted positive); everything else sits strictly below them.
  double min_raw = 0.0, max_raw = 0.0;
  for (int64_t c = 0; c < m; ++c) {
    min_raw = std::min(min_raw, raw[c]);
    max_raw = std::max(max_raw, raw[c]);
  }
  const double floor_score = min_raw - 1.0 - 1e-3 * (max_raw - min_raw);
  Matrix s(n1, n2, floor_score);
  for (int64_t c = 0; c < m; ++c) {
    s(cands[c].i, cands[c].j) = raw[c];
  }
  if (!s.AllFinite()) {
    return Status::Internal("NetAlign produced non-finite scores");
  }
  return s;
}

}  // namespace galign
