// CENALP (Du et al., IJCAI 2019): joint network alignment and link
// prediction through cross-graph embedding. This implementation keeps the
// method's core loop: (1) cross-network biased random walks that hop
// between graphs at anchor nodes, (2) skip-gram embeddings over the merged
// corpus, (3) iterative anchor expansion — the most confident mutual-best
// pairs are promoted to anchors and the walks are regenerated. The paper's
// auxiliary link-prediction objective is folded into the walk weaving (see
// DESIGN.md §3 Substitutions); the properties the evaluation exercises
// (supervision requirement, high run-time cost, structure-driven signal)
// are preserved.
#pragma once

#include "align/alignment.h"
#include "baselines/skipgram.h"
#include "baselines/walks.h"

namespace galign {

/// CENALP configuration.
struct CenalpConfig {
  WalkConfig walks;
  SkipGramConfig skipgram;
  int expansion_rounds = 3;      ///< anchor-expansion iterations
  double expansion_fraction = 0.05;  ///< new anchors per round (of n1)
  uint64_t seed = 5;
};

/// \brief CENALP aligner. Uses seed anchors when provided; without seeds it
/// bootstraps from degree-similar high-degree pairs.
class CenalpAligner : public Aligner {
 public:
  explicit CenalpAligner(CenalpConfig config = {}) : config_(config) {}

  std::string name() const override { return "CENALP"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  CenalpConfig config_;
};

}  // namespace galign
