#include "baselines/pale.h"

#include <algorithm>
#include <cmath>

#include "autograd/adam.h"
#include "la/decomposition.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "la/ops.h"

namespace galign {

namespace {
inline double FastSigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}
}  // namespace

Matrix EmbedByEdges(const AttributedGraph& g, int64_t dim, int epochs,
                    int negatives, double lr, Rng* rng,
                    const RunContext* run_ctx) {
  const int64_t n = g.num_nodes();
  Matrix z = Matrix::Uniform(n, dim, rng, -0.5 / dim, 0.5 / dim);
  Matrix ctx(n, dim);
  // Degree^(3/4) negative-sampling table (word2vec-style).
  std::vector<int64_t> neg_table;
  neg_table.reserve(n * 4);
  for (int64_t v = 0; v < n; ++v) {
    int64_t copies = 1 + static_cast<int64_t>(
                             std::pow(static_cast<double>(g.Degree(v)), 0.75));
    for (int64_t i = 0; i < copies; ++i) neg_table.push_back(v);
  }
  std::vector<Edge> edges = g.edges();
  std::vector<double> grad(dim);
  const int64_t total_steps =
      std::max<int64_t>(1, static_cast<int64_t>(edges.size()) * epochs);
  int64_t step = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (run_ctx && run_ctx->ShouldStop()) break;
    rng->Shuffle(&edges);
    for (const auto& [u, v] : edges) {
      double cur_lr =
          lr * std::max(0.05, 1.0 - static_cast<double>(step++) / total_steps);
      // Update both directions of the undirected edge.
      for (int dir = 0; dir < 2; ++dir) {
        int64_t a = dir == 0 ? u : v;
        int64_t b = dir == 0 ? v : u;
        double* za = z.row_data(a);
        std::fill(grad.begin(), grad.end(), 0.0);
        for (int ns = 0; ns <= negatives; ++ns) {
          int64_t tgt =
              ns == 0 ? b
                      : neg_table[rng->UniformInt(
                            static_cast<int64_t>(neg_table.size()))];
          double label = ns == 0 ? 1.0 : 0.0;
          if (ns > 0 && tgt == b) continue;
          double* ct = ctx.row_data(tgt);
          double dot = 0.0;
          for (int64_t k = 0; k < dim; ++k) dot += za[k] * ct[k];
          double gcoef = (label - FastSigmoid(dot)) * cur_lr;
          for (int64_t k = 0; k < dim; ++k) {
            grad[k] += gcoef * ct[k];
            ct[k] += gcoef * za[k];
          }
        }
        for (int64_t k = 0; k < dim; ++k) za[k] += grad[k];
      }
    }
  }
  z.NormalizeRows();
  return z;
}

Result<Matrix> PaleAligner::Align(const AttributedGraph& source,
                                  const AttributedGraph& target,
                                  const Supervision& supervision,
                                  const RunContext& ctx) {
  if (supervision.seeds.empty()) {
    return Status::InvalidArgument(
        "PALE requires seed anchors to train its mapping function");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Rng rng(config_.seed);
  Matrix zs = EmbedByEdges(source, config_.embedding_dim,
                           config_.embedding_epochs, config_.negatives,
                           config_.embedding_lr, &rng, &ctx);
  Matrix zt = EmbedByEdges(target, config_.embedding_dim,
                           config_.embedding_epochs, config_.negatives,
                           config_.embedding_lr, &rng, &ctx);

  // Training pairs for the mapping.
  const int64_t num_seeds = static_cast<int64_t>(supervision.seeds.size());
  Matrix x(num_seeds, config_.embedding_dim);
  Matrix y(num_seeds, config_.embedding_dim);
  for (int64_t i = 0; i < num_seeds; ++i) {
    auto [s, t] = supervision.seeds[i];
    if (s < 0 || s >= source.num_nodes() || t < 0 || t >= target.num_nodes()) {
      return Status::InvalidArgument("seed anchor out of range");
    }
    std::copy(zs.row_data(s), zs.row_data(s) + zs.cols(), x.row_data(i));
    std::copy(zt.row_data(t), zt.row_data(t) + zt.cols(), y.row_data(i));
  }

  if (!config_.mlp_mapping) {
    // Linear mapping solved in closed form as an orthogonal Procrustes
    // problem: M = argmin_{M orthogonal} ||X M - Y||_F = U V^T where
    // X^T Y = U S V^T. The orthogonality constraint keeps the mapping
    // well-posed even when seeds are far fewer than d^2 unknowns.
    Matrix xty = MatMulTransposedA(x, y);
    auto svd = ThinSVD(xty, 64, &ctx);
    GALIGN_RETURN_NOT_OK(svd.status());
    Matrix m = MatMulTransposedB(svd.ValueOrDie().u, svd.ValueOrDie().v);
    Matrix mapped_zs = MatMul(zs, m);
    mapped_zs.NormalizeRows();
    return MatMulTransposedB(mapped_zs, zt);
  }

  // MLP mapping trained with Adam on the seed pairs.
  const int64_t d = config_.embedding_dim;
  const int64_t hidden = config_.mlp_hidden;
  Matrix w1 = Matrix::Xavier(d, hidden, &rng);
  Matrix b1(1, hidden);
  Matrix w2 = Matrix::Xavier(hidden, d, &rng);
  Matrix b2(1, d);

  AdamOptimizer adam(AdamOptimizer::Options{.lr = config_.mapping_lr});
  std::vector<Matrix*> params{&w1, &b1, &w2, &b2};
  adam.Register(params);

  auto forward_mapping = [&](Tape* tape, const Matrix& input,
                             std::vector<Var>* leaves) {
    Var in = tape->Leaf(input, false);
    Var vw1 = tape->Leaf(w1, true), vb1 = tape->Leaf(b1, true);
    Var vw2 = tape->Leaf(w2, true), vb2 = tape->Leaf(b2, true);
    *leaves = {vw1, vb1, vw2, vb2};
    Var h = ag::Tanh(tape, ag::AddBias(tape, ag::MatMul(tape, in, vw1), vb1));
    return ag::AddBias(tape, ag::MatMul(tape, h, vw2), vb2);
  };

  for (int epoch = 0; epoch < config_.mapping_epochs; ++epoch) {
    if (ctx.ShouldStop()) break;  // best-so-far mapping weights
    Tape tape;
    std::vector<Var> leaves;
    Var pred = forward_mapping(&tape, x, &leaves);
    Var loss = ag::MSELoss(&tape, pred, y);
    tape.Backward(loss);
    std::vector<const Matrix*> grads;
    for (Var v : leaves) grads.push_back(&tape.grad(v));
    adam.Step(params, grads);
  }

  // Map all source embeddings and score against target embeddings.
  Tape tape;
  std::vector<Var> leaves;
  Var mapped = forward_mapping(&tape, zs, &leaves);
  Matrix mapped_zs = tape.value(mapped);
  mapped_zs.NormalizeRows();
  return MatMulTransposedB(mapped_zs, zt);
}

}  // namespace galign
