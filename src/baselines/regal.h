// REGAL (Heimann et al., CIKM 2018): representation-learning-based graph
// alignment. Embeds both networks jointly with xNetMF (structural identity
// + attributes, landmark low-rank factorization) and scores alignment by
// embedding similarity. No supervision is used.
#pragma once

#include "align/alignment.h"
#include "baselines/xnetmf.h"

namespace galign {

/// \brief REGAL aligner (xNetMF + similarity of the joint embeddings).
class RegalAligner : public Aligner {
 public:
  explicit RegalAligner(XNetMfConfig config = {}) : config_(config) {}

  std::string name() const override { return "REGAL"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

  /// xNetMF working set (features, landmark factorization, embeddings)
  /// plus the dense n1 x n2 cosine matrix.
  uint64_t EstimatePeakBytes(int64_t n_source, int64_t n_target,
                             int64_t dims) const override;

  /// Budget-degraded run (DESIGN.md §9): embeds exactly as Align(), then
  /// streams the cosine similarity through the row-blocked top-k kernel
  /// instead of materializing the n1 x n2 matrix.
  [[nodiscard]] Result<TopKAlignment> AlignTopK(const AttributedGraph& source,
                                  const AttributedGraph& target,
                                  const Supervision& supervision,
                                  const RunContext& ctx, int64_t k) override;

 private:
  /// Peak bytes of the embedding phase alone (what AlignTopK keeps).
  uint64_t EstimateEmbedBytes(int64_t n_source, int64_t n_target,
                              int64_t dims) const;

  XNetMfConfig config_;
};

}  // namespace galign
