// REGAL (Heimann et al., CIKM 2018): representation-learning-based graph
// alignment. Embeds both networks jointly with xNetMF (structural identity
// + attributes, landmark low-rank factorization) and scores alignment by
// embedding similarity. No supervision is used.
#pragma once

#include "align/alignment.h"
#include "baselines/xnetmf.h"

namespace galign {

/// \brief REGAL aligner (xNetMF + similarity of the joint embeddings).
class RegalAligner : public Aligner {
 public:
  explicit RegalAligner(XNetMfConfig config = {}) : config_(config) {}

  std::string name() const override { return "REGAL"; }

  using Aligner::Align;
  Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  XNetMfConfig config_;
};

}  // namespace galign
