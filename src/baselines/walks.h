// Random-walk corpus generation: uniform walks (DeepWalk-style) and
// CENALP's cross-network walks that hop between the source and target graph
// at merged anchor nodes. Walk tokens identify nodes in a combined id space
// (source node v -> v, target node v' -> n1 + v'); merged anchors share the
// source-side token.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace galign {

/// Options for walk generation.
struct WalkConfig {
  int walks_per_node = 10;
  int walk_length = 20;
  /// Cross-network jump probability at an anchor node (CENALP walks only).
  double cross_probability = 0.5;
};

/// Uniform random walks over one graph; token = node id.
std::vector<std::vector<int64_t>> UniformWalks(const AttributedGraph& g,
                                               const WalkConfig& cfg,
                                               Rng* rng);

/// \brief node2vec-style biased walks (Grover & Leskovec, KDD 2016).
///
/// Second-order walk with return parameter p and in-out parameter q: from
/// step (prev -> cur), the unnormalized probability of moving to x is
///   1/p  if x == prev (return),
///   1    if x is a neighbour of prev (BFS-like),
///   1/q  otherwise (DFS-like).
/// p = q = 1 reduces to a uniform walk. Sampling is rejection-based, so no
/// alias tables are precomputed.
std::vector<std::vector<int64_t>> Node2VecWalks(const AttributedGraph& g,
                                                const WalkConfig& cfg,
                                                double p, double q, Rng* rng);

/// \brief Cross-network walks for CENALP.
///
/// `anchors` maps source node -> target node (or -1). A walk positioned at
/// a source node that is anchored can jump to the matched target node (and
/// vice versa) with cross_probability, weaving the networks into one corpus.
/// Tokens of an anchored target node are rewritten to the source-side token
/// so matched pairs share one vocabulary entry.
std::vector<std::vector<int64_t>> CrossNetworkWalks(
    const AttributedGraph& source, const AttributedGraph& target,
    const std::vector<int64_t>& anchors, const WalkConfig& cfg, Rng* rng);

}  // namespace galign
