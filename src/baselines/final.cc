#include "baselines/final.h"

#include <cmath>

#include "common/fault.h"
#include "common/logging.h"
#include "la/ops.h"

namespace galign {

namespace {

// D^{-1/2} A D^{-1/2} without self loops (FINAL normalizes the plain
// adjacency; isolated nodes keep zero rows).
SparseMatrix SymmetricNormalized(const AttributedGraph& g) {
  SparseMatrix a = g.adjacency();
  std::vector<double> inv_sqrt(a.rows(), 0.0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    double deg = a.RowSum(r);
    if (deg > 0.0) inv_sqrt[r] = 1.0 / std::sqrt(deg);
  }
  std::vector<Triplet> t;
  t.reserve(a.nnz());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      int64_t c = a.col_idx()[i];
      t.push_back({r, c, a.values()[i] * inv_sqrt[r] * inv_sqrt[c]});
    }
  }
  return SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(t));
}

}  // namespace

Result<Matrix> FinalAligner::Align(const AttributedGraph& source,
                                   const AttributedGraph& target,
                                   const Supervision& supervision,
                                   const RunContext& ctx) {
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));

  Matrix h = supervision.seeds.empty()
                 ? AttributePrior(source, target)
                 : PriorFromSeeds(n1, n2, supervision);

  // Attribute agreement matrix N (uniform 1 when attributes are disabled or
  // incomparable).
  Matrix n(n1, n2, 1.0);
  if (config_.use_attributes &&
      source.num_attributes() == target.num_attributes()) {
    const Matrix& fs = source.attributes();
    const Matrix& ft = target.attributes();
    for (int64_t i = 0; i < n1; ++i) {
      for (int64_t j = 0; j < n2; ++j) {
        // Shift cosine into (0, 1] so disagreement dampens instead of
        // zeroing the propagation.
        n(i, j) = 0.5 * (1.0 + std::max(-1.0, RowCosine(fs, i, ft, j)));
      }
    }
  }

  SparseMatrix as = SymmetricNormalized(source);
  SparseMatrix at = SymmetricNormalized(target);
  SparseMatrix at_transposed = at.Transposed();

  Matrix s = h;
  report_ = ConvergenceReport{};
  for (int it = 0; it < config_.max_iterations; ++it) {
    if (ctx.ShouldStop()) {
      report_.degraded = true;  // best-so-far: the iteration is contractive
      break;
    }
    Matrix masked = Hadamard(n, s);
    Matrix left = as.Multiply(masked);
    Matrix propagated = Transpose(at_transposed.Multiply(Transpose(left)));
    Matrix next = Hadamard(n, propagated);
    next.Scale(config_.alpha);
    next.Axpy(1.0 - config_.alpha, h);
    double delta =
        fault::Perturb("solver.final.residual", Matrix::MaxAbsDiff(next, s));
    s = std::move(next);
    report_.iterations = it + 1;
    report_.residual = delta;
    if (delta < config_.tolerance) {
      report_.converged = true;
      break;
    }
  }
  if (!s.AllFinite()) {
    return Status::Internal("FINAL produced non-finite scores");
  }
  if (!report_.converged) {
    report_.degraded = true;
    GALIGN_LOG(Warning) << "FINAL: " << report_.ToString() << " (tolerance "
                        << config_.tolerance << "); using last iterate";
  }
  return s;
}

}  // namespace galign
