#include "baselines/deeplink.h"

#include "autograd/adam.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "la/ops.h"

namespace galign {

namespace {

// Trains the MLP mapping x -> y on the given pairs and returns the mapped
// version of `all_inputs`.
Matrix TrainAndMap(const Matrix& x, const Matrix& y, const Matrix& all_inputs,
                   const DeepLinkConfig& cfg, Rng* rng,
                   const RunContext& ctx) {
  const int64_t d = x.cols();
  Matrix w1 = Matrix::Xavier(d, cfg.mlp_hidden, rng);
  Matrix b1(1, cfg.mlp_hidden);
  Matrix w2 = Matrix::Xavier(cfg.mlp_hidden, d, rng);
  Matrix b2(1, d);
  AdamOptimizer adam(AdamOptimizer::Options{.lr = cfg.mapping_lr});
  std::vector<Matrix*> params{&w1, &b1, &w2, &b2};
  adam.Register(params);

  auto forward = [&](Tape* tape, const Matrix& input,
                     std::vector<Var>* leaves) {
    Var in = tape->Leaf(input, false);
    Var vw1 = tape->Leaf(w1, true), vb1 = tape->Leaf(b1, true);
    Var vw2 = tape->Leaf(w2, true), vb2 = tape->Leaf(b2, true);
    *leaves = {vw1, vb1, vw2, vb2};
    Var h = ag::Tanh(tape, ag::AddBias(tape, ag::MatMul(tape, in, vw1), vb1));
    return ag::AddBias(tape, ag::MatMul(tape, h, vw2), vb2);
  };

  for (int epoch = 0; epoch < cfg.mapping_epochs; ++epoch) {
    if (ctx.ShouldStop()) break;  // best-so-far mapping weights
    Tape tape;
    std::vector<Var> leaves;
    Var pred = forward(&tape, x, &leaves);
    Var loss = ag::MSELoss(&tape, pred, y);
    tape.Backward(loss);
    std::vector<const Matrix*> grads;
    for (Var v : leaves) grads.push_back(&tape.grad(v));
    adam.Step(params, grads);
  }
  Tape tape;
  std::vector<Var> leaves;
  Var mapped = forward(&tape, all_inputs, &leaves);
  Matrix out = tape.value(mapped);
  out.NormalizeRows();
  return out;
}

}  // namespace

Result<Matrix> DeepLinkAligner::Align(const AttributedGraph& source,
                                      const AttributedGraph& target,
                                      const Supervision& supervision,
                                      const RunContext& ctx) {
  if (supervision.seeds.empty()) {
    return Status::InvalidArgument(
        "DeepLink requires seed anchors to train its mapping");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Rng rng(config_.seed);

  // (1) per-network DeepWalk embeddings.
  auto walks_s = UniformWalks(source, config_.walks, &rng);
  auto walks_t = UniformWalks(target, config_.walks, &rng);
  SkipGramConfig sg = config_.skipgram;
  Matrix zs = TrainSkipGram(walks_s, source.num_nodes(), sg);
  sg.seed += 1;
  Matrix zt = TrainSkipGram(walks_t, target.num_nodes(), sg);

  // (2) seed pairs.
  const int64_t num_seeds = static_cast<int64_t>(supervision.seeds.size());
  Matrix xs(num_seeds, zs.cols()), yt(num_seeds, zt.cols());
  for (int64_t i = 0; i < num_seeds; ++i) {
    auto [s, t] = supervision.seeds[i];
    if (s < 0 || s >= source.num_nodes() || t < 0 || t >= target.num_nodes()) {
      return Status::InvalidArgument("seed anchor out of range");
    }
    std::copy(zs.row_data(s), zs.row_data(s) + zs.cols(), xs.row_data(i));
    std::copy(zt.row_data(t), zt.row_data(t) + zt.cols(), yt.row_data(i));
  }

  // Forward mapping source -> target space.
  Matrix mapped_s = TrainAndMap(xs, yt, zs, config_, &rng, ctx);
  Matrix score = MatMulTransposedB(mapped_s, zt);
  if (config_.dual) {
    // Backward mapping target -> source space; transpose its score matrix
    // and average (the dual-learning approximation).
    Matrix mapped_t = TrainAndMap(yt, xs, zt, config_, &rng, ctx);
    Matrix back = MatMulTransposedB(mapped_t, zs);  // n2 x n1
    score.Axpy(1.0, Transpose(back));
    score.Scale(0.5);
  }
  if (!score.AllFinite()) {
    return Status::Internal("DeepLink produced non-finite scores");
  }
  return score;
}

}  // namespace galign
