// xNetMF (Heimann et al., CIKM 2018): the cross-network node representation
// behind REGAL. Each node is described by log-binned degree histograms of
// its k-hop neighbourhoods (structural identity, no alignment supervision),
// optionally concatenated with node attributes; a Nyström-style low-rank
// factorization of the node-to-landmark similarity matrix yields embeddings
// comparable across networks.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "graph/graph.h"
#include "la/matrix.h"

namespace galign {

/// xNetMF configuration.
struct XNetMfConfig {
  int max_hops = 2;          ///< K: neighbourhood radius
  double hop_discount = 0.5; ///< delta: weight of hop h is delta^(h-1)
  double gamma_struct = 1.0; ///< structural distance weight
  double gamma_attr = 1.0;   ///< attribute distance weight
  int64_t num_landmarks = 0; ///< p; 0 = 10 * log2(N), clamped to N
  uint64_t seed = 17;
};

/// Log-binned degree histograms of the k-hop neighbourhoods of every node.
/// Bin b counts neighbours of degree in [2^b, 2^(b+1)); hop h contributes
/// with weight delta^(h-1). Rows are feature vectors.
Matrix StructuralFeatures(const AttributedGraph& g, const XNetMfConfig& cfg);

/// \brief Joint xNetMF embeddings for two networks.
///
/// Returns a (n1 + n2) x p embedding matrix: source nodes first. Both
/// networks share the same landmark set, which is what makes the spaces
/// comparable without anchors.
/// The optional RunContext bounds the Nyström pseudo-inverse/SVD solves
/// (the dominant cost); an expired context degrades them to their best
/// partial decomposition (DESIGN.md §8).
[[nodiscard]] Result<Matrix> XNetMfEmbed(const AttributedGraph& source,
                           const AttributedGraph& target,
                           const XNetMfConfig& cfg,
                           const RunContext* ctx = nullptr);

}  // namespace galign
