#include "baselines/isorank.h"

#include "common/fault.h"
#include "common/logging.h"
#include "la/ops.h"

namespace galign {

namespace {

// Row-stochastic random-walk matrix of the adjacency (rows with no edges
// stay zero; their similarity comes entirely from the prior).
SparseMatrix RowNormalizedAdjacency(const AttributedGraph& g) {
  SparseMatrix a = g.adjacency();
  for (int64_t r = 0; r < a.rows(); ++r) {
    double sum = a.RowSum(r);
    if (sum > 0.0) a.ScaleRow(r, 1.0 / sum);
  }
  return a;
}

}  // namespace

Result<Matrix> IsoRankAligner::Align(const AttributedGraph& source,
                                     const AttributedGraph& target,
                                     const Supervision& supervision,
                                     const RunContext& ctx) {
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));

  Matrix prior = supervision.seeds.empty()
                     ? AttributePrior(source, target)
                     : PriorFromSeeds(n1, n2, supervision);

  SparseMatrix ps = RowNormalizedAdjacency(source);
  SparseMatrix pt = RowNormalizedAdjacency(target);
  SparseMatrix pt_transposed = pt.Transposed();

  Matrix r = prior;
  report_ = ConvergenceReport{};
  for (int it = 0; it < config_.max_iterations; ++it) {
    if (ctx.ShouldStop()) {
      // Best-so-far: each iterate contracts toward the fixed point, so the
      // latest one is the best available under the budget.
      report_.degraded = true;
      break;
    }
    // alpha * P_s^T R P_t: left multiply by P_s^T, then right multiply by
    // P_t via the transpose trick.
    Matrix left = ps.TransposedMultiply(r);
    Matrix next = Transpose(pt_transposed.Multiply(Transpose(left)));
    next.Scale(config_.alpha);
    next.Axpy(1.0 - config_.alpha, prior);
    double delta =
        fault::Perturb("solver.isorank.residual", Matrix::MaxAbsDiff(next, r));
    r = std::move(next);
    report_.iterations = it + 1;
    report_.residual = delta;
    if (delta < config_.tolerance) {
      report_.converged = true;
      break;
    }
  }
  if (!r.AllFinite()) {
    return Status::Internal("IsoRank produced non-finite scores");
  }
  if (!report_.converged) {
    // The iteration is a contraction toward the fixed point, so the last
    // iterate is the best estimate — return it, flagged degraded.
    report_.degraded = true;
    GALIGN_LOG(Warning) << "IsoRank: " << report_.ToString()
                        << " (tolerance " << config_.tolerance
                        << "); using last iterate";
  }
  return r;
}

}  // namespace galign
