#include "baselines/unialign.h"

#include <algorithm>

#include "la/decomposition.h"
#include "la/ops.h"

namespace galign {

Result<Matrix> UniAlignAligner::Align(const AttributedGraph& source,
                                      const AttributedGraph& target,
                                      const Supervision& supervision,
                                      const RunContext& ctx) {
  (void)supervision;  // unsupervised
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  XNetMfConfig feat_cfg;
  feat_cfg.max_hops = config_.max_hops;
  feat_cfg.hop_discount = config_.hop_discount;
  Matrix ws = StructuralFeatures(source, feat_cfg);
  Matrix wt = StructuralFeatures(target, feat_cfg);

  // Pad structural features to a common width (bin counts differ when the
  // max degrees differ).
  const int64_t width = std::max(ws.cols(), wt.cols());
  auto pad = [&](const Matrix& m) {
    Matrix out(m.rows(), width);
    for (int64_t r = 0; r < m.rows(); ++r) {
      std::copy(m.row_data(r), m.row_data(r) + m.cols(), out.row_data(r));
    }
    return out;
  };
  Matrix fs = pad(ws);
  Matrix ft = pad(wt);

  const bool attrs = config_.use_attributes &&
                     source.num_attributes() == target.num_attributes();
  if (attrs) {
    const Matrix* parts_s[] = {&fs, &source.attributes()};
    const Matrix* parts_t[] = {&ft, &target.attributes()};
    fs = ConcatCols({parts_s[0], parts_s[1]});
    ft = ConcatCols({parts_t[0], parts_t[1]});
  }

  // P = W_s W_t^+ : each source row expressed in the target's feature rows.
  // The pseudo-inverse dominates the runtime, so the deadline is threaded
  // into its Jacobi sweeps (an expired context yields the partial
  // decomposition's best rotation — still a usable projection).
  auto pinv = PseudoInverse(ft, 1e-10, &ctx);
  GALIGN_RETURN_NOT_OK(pinv.status());
  // pinv(ft) is width x n2; P = fs (n1 x width) * pinv = n1 x n2.
  Matrix p = MatMul(fs, pinv.ValueOrDie());
  if (!p.AllFinite()) {
    return Status::Internal("UniAlign produced non-finite scores");
  }
  return p;
}

}  // namespace galign
