// PALE (Man et al., IJCAI 2016): Predicting Anchor Links via Embedding.
// Each network is embedded independently by maximizing the co-occurrence
// likelihood of edge endpoints (first-order objective with negative
// sampling); a supervised mapping (linear or MLP) trained on seed anchors
// then bridges the two embedding spaces. Alignment scores are similarities
// of mapped source embeddings to target embeddings.
#pragma once

#include "align/alignment.h"

namespace galign {

/// PALE configuration.
struct PaleConfig {
  int64_t embedding_dim = 64;
  int embedding_epochs = 80;   ///< SGD passes over the edge list
  int negatives = 5;
  double embedding_lr = 0.025;
  /// Mapping function: linear solved in closed form by least squares
  /// (default — robust with few seeds), or an MLP trained with Adam.
  bool mlp_mapping = false;
  int64_t mlp_hidden = 128;
  int mapping_epochs = 300;
  double mapping_lr = 0.01;
  uint64_t seed = 3;
};

/// \brief PALE aligner. Requires seed anchors; without supervision the two
/// embedding spaces are unrelated and the mapping cannot be trained.
class PaleAligner : public Aligner {
 public:
  explicit PaleAligner(PaleConfig config = {}) : config_(config) {}

  std::string name() const override { return "PALE"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  PaleConfig config_;
};

/// First-order edge embedding shared by PALE (exposed for tests): maximizes
/// sigma(z_u . z_v) over edges with `negatives` negative samples per edge.
/// When `run_ctx` is given, the epoch loop winds down early once it expires
/// and the rows trained so far are returned (normalized as usual).
Matrix EmbedByEdges(const AttributedGraph& g, int64_t dim, int epochs,
                    int negatives, double lr, Rng* rng,
                    const RunContext* run_ctx = nullptr);

}  // namespace galign
