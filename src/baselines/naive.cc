#include "baselines/naive.h"

#include <cmath>

#include "la/ops.h"

namespace galign {

Result<Matrix> DegreeRankAligner::Align(const AttributedGraph& source,
                                        const AttributedGraph& target,
                                        const Supervision& supervision,
                                        const RunContext& ctx) {
  (void)supervision;
  (void)ctx;  // non-iterative: nothing to wind down early
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  Matrix s(source.num_nodes(), target.num_nodes());
  for (int64_t v = 0; v < source.num_nodes(); ++v) {
    double dv = static_cast<double>(source.Degree(v));
    for (int64_t u = 0; u < target.num_nodes(); ++u) {
      double du = static_cast<double>(target.Degree(u));
      // Relative-difference kernel keeps hubs comparable with hubs.
      double denom = std::max(1.0, std::max(dv, du));
      s(v, u) = 1.0 - std::fabs(dv - du) / denom;
    }
  }
  return s;
}

Result<Matrix> AttributeOnlyAligner::Align(const AttributedGraph& source,
                                           const AttributedGraph& target,
                                           const Supervision& supervision,
                                           const RunContext& ctx) {
  (void)supervision;
  (void)ctx;  // non-iterative: nothing to wind down early
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument("attribute dimensions differ");
  }
  Matrix s(source.num_nodes(), target.num_nodes());
  for (int64_t v = 0; v < source.num_nodes(); ++v) {
    for (int64_t u = 0; u < target.num_nodes(); ++u) {
      s(v, u) = RowCosine(source.attributes(), v, target.attributes(), u);
    }
  }
  return s;
}

Result<Matrix> RandomAligner::Align(const AttributedGraph& source,
                                    const AttributedGraph& target,
                                    const Supervision& supervision,
                                    const RunContext& ctx) {
  (void)supervision;
  (void)ctx;  // non-iterative: nothing to wind down early
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  Rng rng(seed_);
  return Matrix::Uniform(source.num_nodes(), target.num_nodes(), &rng);
}

}  // namespace galign
