#include "baselines/naive.h"

#include <cmath>

#include "la/ops.h"

namespace galign {

Result<Matrix> DegreeRankAligner::Align(const AttributedGraph& source,
                                        const AttributedGraph& target,
                                        const Supervision& supervision,
                                        const RunContext& ctx) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Matrix s(source.num_nodes(), target.num_nodes());
  for (int64_t v = 0; v < source.num_nodes(); ++v) {
    double dv = static_cast<double>(source.Degree(v));
    for (int64_t u = 0; u < target.num_nodes(); ++u) {
      double du = static_cast<double>(target.Degree(u));
      // Relative-difference kernel keeps hubs comparable with hubs.
      double denom = std::max(1.0, std::max(dv, du));
      s(v, u) = 1.0 - std::fabs(dv - du) / denom;
    }
  }
  return s;
}

uint64_t DegreeRankAligner::EstimatePeakBytes(int64_t n_source,
                                              int64_t n_target,
                                              int64_t dims) const {
  // One result matrix plus the (adapter) top-k copy; no iterate/scratch.
  return 2 * DenseBytes(n_source, n_target) +
         DenseBytes(n_source + n_target, dims);
}

Result<TopKAlignment> DegreeRankAligner::AlignTopK(
    const AttributedGraph& source, const AttributedGraph& target,
    const Supervision& supervision, const RunContext& ctx, int64_t k) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  auto block_rows = BudgetedBlockRows(n1, k, DenseBytes(1, n2), ctx);
  GALIGN_RETURN_NOT_OK(block_rows.status());
  auto fill = [&](int64_t r0, int64_t nrows, Matrix* block) -> Status {
    for (int64_t i = 0; i < nrows; ++i) {
      double dv = static_cast<double>(source.Degree(r0 + i));
      for (int64_t u = 0; u < n2; ++u) {
        double du = static_cast<double>(target.Degree(u));
        double denom = std::max(1.0, std::max(dv, du));
        (*block)(i, u) = 1.0 - std::fabs(dv - du) / denom;
      }
    }
    return Status::OK();
  };
  return ChunkedTopK(n1, n2, k, block_rows.ValueOrDie(), fill, ctx);
}

Result<Matrix> AttributeOnlyAligner::Align(const AttributedGraph& source,
                                           const AttributedGraph& target,
                                           const Supervision& supervision,
                                           const RunContext& ctx) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument("attribute dimensions differ");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Matrix s(source.num_nodes(), target.num_nodes());
  for (int64_t v = 0; v < source.num_nodes(); ++v) {
    for (int64_t u = 0; u < target.num_nodes(); ++u) {
      s(v, u) = RowCosine(source.attributes(), v, target.attributes(), u);
    }
  }
  return s;
}

uint64_t AttributeOnlyAligner::EstimatePeakBytes(int64_t n_source,
                                                 int64_t n_target,
                                                 int64_t dims) const {
  return 2 * DenseBytes(n_source, n_target) +
         DenseBytes(n_source + n_target, dims);
}

Result<TopKAlignment> AttributeOnlyAligner::AlignTopK(
    const AttributedGraph& source, const AttributedGraph& target,
    const Supervision& supervision, const RunContext& ctx, int64_t k) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument("attribute dimensions differ");
  }
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  auto block_rows = BudgetedBlockRows(n1, k, DenseBytes(1, n2), ctx);
  GALIGN_RETURN_NOT_OK(block_rows.status());
  auto fill = [&](int64_t r0, int64_t nrows, Matrix* block) -> Status {
    for (int64_t i = 0; i < nrows; ++i) {
      for (int64_t u = 0; u < n2; ++u) {
        (*block)(i, u) =
            RowCosine(source.attributes(), r0 + i, target.attributes(), u);
      }
    }
    return Status::OK();
  };
  return ChunkedTopK(n1, n2, k, block_rows.ValueOrDie(), fill, ctx);
}

Result<Matrix> RandomAligner::Align(const AttributedGraph& source,
                                    const AttributedGraph& target,
                                    const Supervision& supervision,
                                    const RunContext& ctx) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Rng rng(seed_);
  return Matrix::Uniform(source.num_nodes(), target.num_nodes(), &rng);
}

}  // namespace galign
