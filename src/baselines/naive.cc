#include "baselines/naive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>
#include <utility>
#include <vector>

#include "graph/ann/ann.h"
#include "la/ops.h"

namespace galign {

namespace {

// The degree-similarity kernel shared by every DegreeRank path. One
// expression, so the retrieval route below produces bitwise-identical
// scores (and therefore identical ties) to the dense scan.
inline double DegreeScore(double dv, double du) {
  const double denom = std::max(1.0, std::max(dv, du));
  return 1.0 - std::fabs(dv - du) / denom;
}

// Exact sublinear DegreeRank retrieval: the score is monotone on both
// sides of du == dv (non-increasing as du walks away from dv), so the
// top-k of a row is contained in a contiguous band of the degree-sorted
// target list. Targets are grouped by degree; groups are consumed in
// descending score order by a two-sided merge, and every group tied with
// the k-th best score is included so TopKSelect can settle ties by lowest
// id — making the output identical to the O(n1 * n2) chunked scan.
// Worst case (many groups tied, e.g. isolated query nodes scoring 0
// against everything) degrades to O(n2) for that row, the exact cost the
// dense path always pays.
Result<TopKAlignment> DegreeTopK(const AttributedGraph& source,
                                 const AttributedGraph& target, int64_t k,
                                 const RunContext& ctx) {
  if (k <= 0) {
    return Status::InvalidArgument("DegreeTopK: k must be > 0");
  }
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  k = std::min(k, n2);

  TopKAlignment out;
  out.rows = n1;
  out.cols = n2;
  out.k = k;
  MemoryScope scope;
  GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
      ctx.budget(),
      TopKOutputBytes(n1, k) + static_cast<uint64_t>(n2) * 3 * sizeof(int64_t),
      "degree top-k retrieval", &scope));
  try {
    out.index.assign(static_cast<size_t>(n1) * k, -1);
    out.score.assign(static_cast<size_t>(n1) * k,
                     -std::numeric_limits<double>::infinity());
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("DegreeTopK: output does not fit");
  }
  if (k == 0) {
    out.rows_computed = n1;
    return out;
  }

  // Degree-sorted target ids (ascending id within equal degree) and the
  // group structure over them.
  std::vector<std::pair<int64_t, int64_t>> by_deg(static_cast<size_t>(n2));
  for (int64_t u = 0; u < n2; ++u) by_deg[u] = {target.Degree(u), u};
  std::sort(by_deg.begin(), by_deg.end());
  std::vector<int64_t> gstart;  // index of each group's first entry
  for (int64_t i = 0; i < n2; ++i) {
    if (i == 0 || by_deg[i].first != by_deg[i - 1].first) gstart.push_back(i);
  }
  gstart.push_back(n2);
  const int64_t groups = static_cast<int64_t>(gstart.size()) - 1;

  std::vector<int64_t> cand;
  std::vector<double> scores;
  std::vector<int64_t> sel(static_cast<size_t>(k));
  constexpr int64_t kPollRows = 256;
  for (int64_t v = 0; v < n1; ++v) {
    if ((v % kPollRows) == 0 && ctx.ShouldStop()) break;
    const double dv = static_cast<double>(source.Degree(v));
    // First group with degree >= dv.
    int64_t lo = 0, hi = groups;
    while (lo < hi) {
      const int64_t mid = (lo + hi) / 2;
      if (static_cast<double>(by_deg[gstart[mid]].first) < dv) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    int64_t left = lo - 1, right = lo;
    cand.clear();
    int64_t count = 0;
    double threshold = 0.0;
    bool have_threshold = false;
    auto group_score = [&](int64_t g) {
      return DegreeScore(dv, static_cast<double>(by_deg[gstart[g]].first));
    };
    while (left >= 0 || right < groups) {
      const double sl = left >= 0 ? group_score(left) : -1.0;
      const double sr = right < groups ? group_score(right) : -1.0;
      const double s = std::max(sl, sr);
      if (have_threshold && s < threshold) break;
      const int64_t g = sr >= sl ? right : left;
      for (int64_t i = gstart[g]; i < gstart[g + 1]; ++i) {
        cand.push_back(by_deg[i].second);
      }
      count += gstart[g + 1] - gstart[g];
      if (sr >= sl) {
        ++right;
      } else {
        --left;
      }
      if (!have_threshold && count >= k) {
        threshold = s;  // the k-th best score lives in this group
        have_threshold = true;
      }
    }
    std::sort(cand.begin(), cand.end());
    scores.resize(cand.size());
    for (size_t c = 0; c < cand.size(); ++c) {
      scores[c] = DegreeScore(
          dv, static_cast<double>(target.Degree(cand[c])));
    }
    TopKSelect(scores.data(), static_cast<int64_t>(cand.size()), k,
               sel.data(), &out.score[v * k]);
    for (int64_t j = 0; j < k; ++j) {
      out.index[v * k + j] =
          sel[static_cast<size_t>(j)] >= 0
              ? cand[static_cast<size_t>(sel[static_cast<size_t>(j)])]
              : -1;
    }
    out.rows_computed = v + 1;
  }
  return out;
}

}  // namespace

Result<Matrix> DegreeRankAligner::Align(const AttributedGraph& source,
                                        const AttributedGraph& target,
                                        const Supervision& supervision,
                                        const RunContext& ctx) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Matrix s(source.num_nodes(), target.num_nodes());
  for (int64_t v = 0; v < source.num_nodes(); ++v) {
    double dv = static_cast<double>(source.Degree(v));
    for (int64_t u = 0; u < target.num_nodes(); ++u) {
      // Relative-difference kernel keeps hubs comparable with hubs.
      s(v, u) = DegreeScore(dv, static_cast<double>(target.Degree(u)));
    }
  }
  return s;
}

uint64_t DegreeRankAligner::EstimatePeakBytes(int64_t n_source,
                                              int64_t n_target,
                                              int64_t dims) const {
  // One result matrix plus the (adapter) top-k copy; no iterate/scratch.
  return 2 * DenseBytes(n_source, n_target) +
         DenseBytes(n_source + n_target, dims);
}

Result<TopKAlignment> DegreeRankAligner::AlignTopK(
    const AttributedGraph& source, const AttributedGraph& target,
    const Supervision& supervision, const RunContext& ctx, int64_t k) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  // The degree kernel admits *exact* sublinear retrieval (no recall loss),
  // so the routed path answers from the degree-sorted group structure in
  // O(k log k) per row; kOff keeps the O(n1 * n2) chunked scan.
  if (ShouldUseAnn(ann_policy_, n1, n2)) {
    return DegreeTopK(source, target, k, ctx);
  }
  auto block_rows = BudgetedBlockRows(n1, k, DenseBytes(1, n2), ctx);
  GALIGN_RETURN_NOT_OK(block_rows.status());
  auto fill = [&](int64_t r0, int64_t nrows, Matrix* block) -> Status {
    for (int64_t i = 0; i < nrows; ++i) {
      double dv = static_cast<double>(source.Degree(r0 + i));
      for (int64_t u = 0; u < n2; ++u) {
        double du = static_cast<double>(target.Degree(u));
        (*block)(i, u) = DegreeScore(dv, du);
      }
    }
    return Status::OK();
  };
  return ChunkedTopK(n1, n2, k, block_rows.ValueOrDie(), fill, ctx);
}

Result<Matrix> AttributeOnlyAligner::Align(const AttributedGraph& source,
                                           const AttributedGraph& target,
                                           const Supervision& supervision,
                                           const RunContext& ctx) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument("attribute dimensions differ");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Matrix s(source.num_nodes(), target.num_nodes());
  for (int64_t v = 0; v < source.num_nodes(); ++v) {
    for (int64_t u = 0; u < target.num_nodes(); ++u) {
      s(v, u) = RowCosine(source.attributes(), v, target.attributes(), u);
    }
  }
  return s;
}

uint64_t AttributeOnlyAligner::EstimatePeakBytes(int64_t n_source,
                                                 int64_t n_target,
                                                 int64_t dims) const {
  return 2 * DenseBytes(n_source, n_target) +
         DenseBytes(n_source + n_target, dims);
}

Result<TopKAlignment> AttributeOnlyAligner::AlignTopK(
    const AttributedGraph& source, const AttributedGraph& target,
    const Supervision& supervision, const RunContext& ctx, int64_t k) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument("attribute dimensions differ");
  }
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  // Cosine over rows is an inner product of row-normalized attributes, so
  // both routes ride the blocked GEMM kernels: exact via the chunked
  // embedding scan (replacing the old scalar RowCosine loops), approximate
  // via the ANN index above the policy threshold.
  const int64_t d = source.num_attributes();
  MemoryScope norm_scope;
  GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
      ctx.budget(), DenseBytes(n1, d) + DenseBytes(n2, d),
      "attribute normalization", &norm_scope));
  std::vector<Matrix> hs, ht;
  hs.push_back(source.attributes());
  ht.push_back(target.attributes());
  hs[0].NormalizeRows();
  ht[0].NormalizeRows();
  if (ShouldUseAnn(ann_policy_, n1, n2)) {
    return AnnEmbeddingTopK(hs, ht, {1.0}, k, ann_policy_, ctx);
  }
  return ChunkedEmbeddingTopK(hs, ht, {1.0}, k, ctx);
}

Result<Matrix> RandomAligner::Align(const AttributedGraph& source,
                                    const AttributedGraph& target,
                                    const Supervision& supervision,
                                    const RunContext& ctx) {
  (void)supervision;
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Rng rng(seed_);
  return Matrix::Uniform(source.num_nodes(), target.num_nodes(), &rng);
}

}  // namespace galign
