// UniAlign (Koutra et al., ICDM 2013 "Big-Align"): the unipartite variant
// reduces network alignment to a bipartite node-to-feature problem. Each
// node is described by a feature matrix W (structural identity features +
// attributes); the closed-form alignment is P = W_s W_t^+, i.e. the
// least-squares soft assignment of source feature rows onto target feature
// rows. Fast, unsupervised, and a useful spectral reference point beyond
// the paper's five baselines.
#pragma once

#include "align/alignment.h"
#include "baselines/xnetmf.h"

namespace galign {

/// UniAlign configuration (reuses xNetMF's structural feature extractor).
struct UniAlignConfig {
  int max_hops = 2;
  double hop_discount = 0.5;
  bool use_attributes = true;
};

/// \brief UniAlign / Big-Align aligner (closed-form, unsupervised).
class UniAlignAligner : public Aligner {
 public:
  explicit UniAlignAligner(UniAlignConfig config = {}) : config_(config) {}

  std::string name() const override { return "UniAlign"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  UniAlignConfig config_;
};

}  // namespace galign
