// IONE (Liu et al., IJCAI 2016): Input-Output Network Embedding for user
// alignment. Each node gets three vectors — an identity vector u, an input
// context c_in, and an output context c_out — trained on directed edge
// co-occurrence so that second-order proximity (shared neighbourhoods) is
// captured; seed anchor pairs HARD-SHARE their vectors across the two
// networks, which is what places both embeddings in one space without a
// separate mapping function. Alignment scores are identity-vector cosines.
//
// On our undirected graphs each edge contributes in both directions, so
// c_in/c_out capture the same second-order signal the original models for
// follower/followee links.
#pragma once

#include "align/alignment.h"

namespace galign {

/// IONE configuration.
struct IoneConfig {
  int64_t dim = 64;
  int epochs = 200;     ///< SGD passes over the union edge list
  int negatives = 5;
  double lr = 0.025;
  uint64_t seed = 37;
};

/// \brief IONE aligner. Requires seed anchors (they tie the two embedding
/// spaces together).
class IoneAligner : public Aligner {
 public:
  explicit IoneAligner(IoneConfig config = {}) : config_(config) {}

  std::string name() const override { return "IONE"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  IoneConfig config_;
};

}  // namespace galign
