// FINAL (Zhang & Tong, KDD 2016): attributed network alignment by a
// fixed-point iteration that enforces structural consistency weighted by
// node-attribute agreement:
//   S <- alpha * N ∘ ( Ā_s (N ∘ S) Ā_t ) + (1 - alpha) * H
// where Ā_* are symmetrically normalized adjacencies, N is the pairwise
// attribute-similarity matrix, ∘ the Hadamard product and H the prior
// alignment matrix built from seeds (the paper's protocol supplies 10%).
#pragma once

#include "align/alignment.h"
#include "common/convergence.h"

namespace galign {

/// FINAL configuration.
struct FinalConfig {
  double alpha = 0.82;      ///< consistency weight vs prior (paper default)
  int max_iterations = 30;
  double tolerance = 1e-6;
  bool use_attributes = true;  ///< false degrades to FINAL-N (structure only)
};

/// \brief FINAL aligner.
class FinalAligner : public Aligner {
 public:
  explicit FinalAligner(FinalConfig config = {}) : config_(config) {}

  std::string name() const override { return "FINAL"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

  /// FINAL keeps more simultaneously-live n1 x n2 matrices than the generic
  /// bound: prior H, attribute kernel N, iterate S, masked copy, and the
  /// two halves of the sandwich product.
  uint64_t EstimatePeakBytes(int64_t n_source, int64_t n_target,
                             int64_t dims) const override {
    return 7 * DenseBytes(n_source, n_target) +
           DenseBytes(n_source + n_target, dims);
  }

  /// Convergence of the most recent Align() fixed-point iteration. When not
  /// converged, the returned scores are the last (best-so-far) iterate.
  const ConvergenceReport& last_report() const { return report_; }

 private:
  FinalConfig config_;
  ConvergenceReport report_;
};

}  // namespace galign
