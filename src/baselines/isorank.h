// IsoRank (Singh et al., PNAS 2008): similarity propagation under the
// homophily assumption — two nodes are similar if their neighbours are
// similar. The fixed point of
//   R = alpha * P_s^T R P_t + (1 - alpha) * E
// (P_* row-stochastic walk matrices, E a prior) is found by power iteration.
// Per the paper's protocol (§VII-A), the prior E is built from 10% seed
// anchors when supplied, otherwise from attribute similarity.
#pragma once

#include "align/alignment.h"
#include "common/convergence.h"

namespace galign {

/// IsoRank configuration.
struct IsoRankConfig {
  double alpha = 0.85;     ///< propagation weight vs prior
  int max_iterations = 30;
  double tolerance = 1e-6;  ///< early stop on max |delta|
};

/// \brief IsoRank aligner.
class IsoRankAligner : public Aligner {
 public:
  explicit IsoRankAligner(IsoRankConfig config = {}) : config_(config) {}

  std::string name() const override { return "IsoRank"; }

  using Aligner::Align;
  Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

  /// Convergence of the most recent Align() power iteration. When not
  /// converged, the returned scores are the last (best-so-far) iterate.
  const ConvergenceReport& last_report() const { return report_; }

 private:
  IsoRankConfig config_;
  ConvergenceReport report_;
};

}  // namespace galign
