// IsoRank (Singh et al., PNAS 2008): similarity propagation under the
// homophily assumption — two nodes are similar if their neighbours are
// similar. The fixed point of
//   R = alpha * P_s^T R P_t + (1 - alpha) * E
// (P_* row-stochastic walk matrices, E a prior) is found by power iteration.
// Per the paper's protocol (§VII-A), the prior E is built from 10% seed
// anchors when supplied, otherwise from attribute similarity.
#pragma once

#include "align/alignment.h"
#include "common/convergence.h"

namespace galign {

/// IsoRank configuration.
struct IsoRankConfig {
  double alpha = 0.85;     ///< propagation weight vs prior
  int max_iterations = 30;
  double tolerance = 1e-6;  ///< early stop on max |delta|
};

/// \brief IsoRank aligner.
class IsoRankAligner : public Aligner {
 public:
  explicit IsoRankAligner(IsoRankConfig config = {}) : config_(config) {}

  std::string name() const override { return "IsoRank"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

  /// Power iteration holds the prior, current iterate, the half product and
  /// the next iterate at once — heavier than the generic bound.
  uint64_t EstimatePeakBytes(int64_t n_source, int64_t n_target,
                             int64_t dims) const override {
    return 5 * DenseBytes(n_source, n_target) +
           DenseBytes(n_source + n_target, dims);
  }

  /// Convergence of the most recent Align() power iteration. When not
  /// converged, the returned scores are the last (best-so-far) iterate.
  const ConvergenceReport& last_report() const { return report_; }

 private:
  IsoRankConfig config_;
  ConvergenceReport report_;
};

}  // namespace galign
