#include "baselines/xnetmf.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "la/decomposition.h"
#include "la/ops.h"

namespace galign {

namespace {

int LogBin(int64_t degree, int num_bins) {
  if (degree <= 0) return 0;
  int b = static_cast<int>(std::floor(std::log2(static_cast<double>(degree))));
  return std::min(b, num_bins - 1);
}

}  // namespace

Matrix StructuralFeatures(const AttributedGraph& g, const XNetMfConfig& cfg) {
  const int64_t n = g.num_nodes();
  int64_t max_degree = 1;
  for (int64_t v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  const int num_bins =
      LogBin(max_degree, /*num_bins=*/64) + 1;  // enough bins for max degree
  Matrix features(n, num_bins);

  // BFS out to max_hops from every node, binning neighbour degrees per hop;
  // the timestamp array avoids clearing `visited` between sources.
  std::vector<int64_t> visited(n, -1);
  std::queue<std::pair<int64_t, int>> frontier;
  for (int64_t v = 0; v < n; ++v) {
    frontier.push({v, 0});
    visited[v] = v;
    double* row = features.row_data(v);
    while (!frontier.empty()) {
      auto [u, hop] = frontier.front();
      frontier.pop();
      if (hop > 0) {
        row[LogBin(g.Degree(u), num_bins)] +=
            std::pow(cfg.hop_discount, hop - 1);
      }
      if (hop == cfg.max_hops) continue;
      for (int64_t w : g.Neighbors(u)) {
        if (visited[w] != v) {
          visited[w] = v;
          frontier.push({w, hop + 1});
        }
      }
    }
  }
  return features;
}

Result<Matrix> XNetMfEmbed(const AttributedGraph& source,
                           const AttributedGraph& target,
                           const XNetMfConfig& cfg, const RunContext* ctx) {
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  const int64_t total = n1 + n2;
  if (total == 0) return Status::InvalidArgument("empty networks");

  Matrix fs = StructuralFeatures(source, cfg);
  Matrix ft = StructuralFeatures(target, cfg);
  // Equalize structural feature width (bin counts can differ).
  const int64_t width = std::max(fs.cols(), ft.cols());
  Matrix structural(total, width);
  for (int64_t v = 0; v < n1; ++v) {
    std::copy(fs.row_data(v), fs.row_data(v) + fs.cols(),
              structural.row_data(v));
  }
  for (int64_t v = 0; v < n2; ++v) {
    std::copy(ft.row_data(v), ft.row_data(v) + ft.cols(),
              structural.row_data(n1 + v));
  }

  const bool use_attrs =
      source.num_attributes() == target.num_attributes() &&
      source.num_attributes() > 0;
  const Matrix& attr_s = source.attributes();
  const Matrix& attr_t = target.attributes();
  auto attr_row = [&](int64_t i) {
    return i < n1 ? attr_s.row_data(i) : attr_t.row_data(i - n1);
  };
  const int64_t attr_dim = use_attrs ? attr_s.cols() : 0;

  // Landmarks.
  int64_t p = cfg.num_landmarks;
  if (p <= 0) {
    p = static_cast<int64_t>(
        10.0 * std::log2(std::max<double>(2.0, static_cast<double>(total))));
  }
  p = std::min(p, total);
  Rng rng(cfg.seed);
  std::vector<int64_t> landmarks = rng.SampleWithoutReplacement(total, p);

  // Scale structural distances by their empirical mean so exp(-d) neither
  // saturates at 1 (tiny sparse-graph histograms) nor underflows to 0
  // (dense graphs with huge neighbourhood counts, where a collapsed C would
  // make every node look identical).
  double mean_dist = 0.0;
  {
    Rng probe(cfg.seed + 1);
    const int kProbes = 256;
    for (int i = 0; i < kProbes; ++i) {
      int64_t a = probe.UniformInt(total);
      int64_t b = probe.UniformInt(total);
      mean_dist += RowSquaredDistance(structural, a, structural, b);
    }
    mean_dist /= kProbes;
    if (mean_dist <= 1e-12) mean_dist = 1.0;
  }
  const double struct_scale = cfg.gamma_struct / mean_dist;

  // C: node-to-landmark similarity exp(-(gs * d_struct + ga * d_attr)).
  Matrix c(total, p);
  for (int64_t i = 0; i < total; ++i) {
    for (int64_t j = 0; j < p; ++j) {
      int64_t l = landmarks[j];
      double d_struct =
          struct_scale * RowSquaredDistance(structural, i, structural, l);
      double d_attr = 0.0;
      if (use_attrs) {
        const double* ai = attr_row(i);
        const double* al = attr_row(l);
        for (int64_t k = 0; k < attr_dim; ++k) {
          // Count disagreements, matching REGAL's categorical distance.
          if (ai[k] != al[k]) d_attr += 1.0;
        }
      }
      c(i, j) = std::exp(-(d_struct + cfg.gamma_attr * d_attr));
    }
  }

  // Nyström: W = C[landmarks, :], Y = C * U * Sigma^(1/2) of pinv(W).
  Matrix w(p, p);
  for (int64_t j = 0; j < p; ++j) {
    for (int64_t k = 0; k < p; ++k) w(j, k) = c(landmarks[j], k);
  }
  auto pinv = PseudoInverse(w, 1e-10, ctx);
  GALIGN_RETURN_NOT_OK(pinv.status());
  auto svd = ThinSVD(pinv.ValueOrDie(), 64, ctx);
  GALIGN_RETURN_NOT_OK(svd.status());
  SVDResult& dec = svd.ValueOrDie();
  Matrix u_scaled = dec.u;
  for (int64_t j = 0; j < u_scaled.cols(); ++j) {
    double s = std::sqrt(std::max(0.0, dec.sigma[j]));
    for (int64_t i = 0; i < u_scaled.rows(); ++i) u_scaled(i, j) *= s;
  }
  Matrix y = MatMul(c, u_scaled);
  y.NormalizeRows();
  return y;
}

}  // namespace galign
