// Naive reference aligners. They bound what any serious method must beat
// and isolate where the signal lives: DegreeRank uses topology degree only,
// AttributeOnly uses node profiles only, Random is the floor. Used by the
// benches as sanity rows and by tests as contrast baselines.
#pragma once

#include "align/alignment.h"

namespace galign {

/// Scores node pairs by closeness of their degrees (|deg difference| -> 0
/// maps to score 1). Pure topology, zeroth order.
class DegreeRankAligner : public Aligner {
 public:
  std::string name() const override { return "DegreeRank"; }
  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;
  uint64_t EstimatePeakBytes(int64_t n_source, int64_t n_target,
                             int64_t dims) const override;
  /// Row-blocked: the degree kernel is computable per row, so a budgeted
  /// run never materializes the n1 x n2 matrix.
  [[nodiscard]] Result<TopKAlignment> AlignTopK(const AttributedGraph& source,
                                  const AttributedGraph& target,
                                  const Supervision& supervision,
                                  const RunContext& ctx, int64_t k) override;
};

/// Scores node pairs by attribute cosine similarity. Pure semantics.
class AttributeOnlyAligner : public Aligner {
 public:
  std::string name() const override { return "AttributeOnly"; }
  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;
  uint64_t EstimatePeakBytes(int64_t n_source, int64_t n_target,
                             int64_t dims) const override;
  /// Row-blocked: cosine rows are independent, so a budgeted run never
  /// materializes the n1 x n2 matrix.
  [[nodiscard]] Result<TopKAlignment> AlignTopK(const AttributedGraph& source,
                                  const AttributedGraph& target,
                                  const Supervision& supervision,
                                  const RunContext& ctx, int64_t k) override;
};

/// Uniform random scores under a fixed seed: the chance floor.
class RandomAligner : public Aligner {
 public:
  explicit RandomAligner(uint64_t seed = 1234) : seed_(seed) {}
  std::string name() const override { return "Random"; }
  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  uint64_t seed_;
};

}  // namespace galign
