#include "baselines/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace galign {

namespace {

inline double FastSigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

// Alias-free sampling from unigram^(3/4) via a cumulative table + binary
// search (corpus vocabularies here are small enough).
class NegativeSampler {
 public:
  NegativeSampler(const std::vector<std::vector<int64_t>>& walks,
                  int64_t vocab_size) {
    std::vector<double> counts(vocab_size, 0.0);
    for (const auto& w : walks) {
      for (int64_t t : w) counts[t] += 1.0;
    }
    cumulative_.resize(vocab_size);
    double total = 0.0;
    for (int64_t v = 0; v < vocab_size; ++v) {
      total += std::pow(counts[v], 0.75);
      cumulative_[v] = total;
    }
    total_ = total;
  }

  int64_t Sample(Rng* rng) const {
    double x = rng->Uniform() * total_;
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
    return static_cast<int64_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

}  // namespace

Matrix TrainSkipGram(const std::vector<std::vector<int64_t>>& walks,
                     int64_t vocab_size, const SkipGramConfig& cfg) {
  GALIGN_DCHECK(vocab_size > 0);
  Rng rng(cfg.seed);
  const int64_t d = cfg.dim;
  Matrix in = Matrix::Uniform(vocab_size, d, &rng, -0.5 / d, 0.5 / d);
  Matrix out(vocab_size, d);
  NegativeSampler sampler(walks, vocab_size);

  int64_t total_tokens = 0;
  for (const auto& w : walks) total_tokens += static_cast<int64_t>(w.size());
  const int64_t total_steps =
      std::max<int64_t>(1, total_tokens * cfg.epochs);
  int64_t step = 0;

  std::vector<double> grad_center(d);
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (const auto& walk : walks) {
      const int64_t len = static_cast<int64_t>(walk.size());
      for (int64_t pos = 0; pos < len; ++pos) {
        double progress = static_cast<double>(step++) / total_steps;
        double lr = std::max(cfg.min_lr, cfg.lr * (1.0 - progress));
        const int64_t center = walk[pos];
        const int64_t window =
            1 + rng.UniformInt(cfg.window);  // dynamic window
        double* wc = in.row_data(center);
        for (int64_t off = -window; off <= window; ++off) {
          if (off == 0) continue;
          int64_t ctx_pos = pos + off;
          if (ctx_pos < 0 || ctx_pos >= len) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0);
          // One positive + cfg.negatives negative updates.
          for (int ns = 0; ns <= cfg.negatives; ++ns) {
            int64_t tgt;
            double label;
            if (ns == 0) {
              tgt = walk[ctx_pos];
              label = 1.0;
            } else {
              tgt = sampler.Sample(&rng);
              if (tgt == walk[ctx_pos]) continue;
              label = 0.0;
            }
            double* wt = out.row_data(tgt);
            double dot = 0.0;
            for (int64_t k = 0; k < d; ++k) dot += wc[k] * wt[k];
            double g = (label - FastSigmoid(dot)) * lr;
            for (int64_t k = 0; k < d; ++k) {
              grad_center[k] += g * wt[k];
              wt[k] += g * wc[k];
            }
          }
          for (int64_t k = 0; k < d; ++k) wc[k] += grad_center[k];
        }
      }
    }
  }
  in.NormalizeRows();
  return in;
}

}  // namespace galign
