// Skip-gram with negative sampling (word2vec SGNS) trained on random-walk
// corpora — the embedding engine behind PALE's co-occurrence objective and
// CENALP's cross-network embeddings.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"

namespace galign {

/// SGNS hyper-parameters.
struct SkipGramConfig {
  int64_t dim = 64;
  int window = 5;
  int negatives = 5;
  int epochs = 2;
  double lr = 0.025;       ///< initial learning rate, linearly decayed
  double min_lr = 0.0001;
  uint64_t seed = 99;
};

/// \brief Trains SGNS over the walk corpus.
///
/// `vocab_size` is the number of distinct tokens (token ids must be in
/// [0, vocab_size)). Negative samples are drawn from the unigram^(3/4)
/// distribution of the corpus. Returns the input-embedding matrix
/// (vocab_size x dim), row-normalized.
Matrix TrainSkipGram(const std::vector<std::vector<int64_t>>& walks,
                     int64_t vocab_size, const SkipGramConfig& cfg);

}  // namespace galign
