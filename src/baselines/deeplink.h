// DeepLink (Zhou et al., INFOCOM 2018): user identity linkage by (1)
// unbiased random-walk + skip-gram embeddings per network, and (2) a
// supervised MLP mapping between the embedding spaces trained on seed
// anchors (the paper's dual-learning refinement is approximated by training
// the forward and backward mappings and averaging their score matrices).
// Mentioned in the GAlign paper's related work (§VIII-A) as a third
// embedding-based technique; structure-only, hence vulnerable to structural
// noise — a property the comparison exercises.
#pragma once

#include "align/alignment.h"
#include "baselines/skipgram.h"
#include "baselines/walks.h"

namespace galign {

/// DeepLink configuration.
struct DeepLinkConfig {
  WalkConfig walks;
  SkipGramConfig skipgram;
  int64_t mlp_hidden = 128;
  int mapping_epochs = 300;
  double mapping_lr = 0.01;
  bool dual = true;  ///< average forward and backward mapping scores
  uint64_t seed = 21;
};

/// \brief DeepLink aligner. Requires seed anchors for the mapping.
class DeepLinkAligner : public Aligner {
 public:
  explicit DeepLinkAligner(DeepLinkConfig config = {}) : config_(config) {}

  std::string name() const override { return "DeepLink"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  DeepLinkConfig config_;
};

}  // namespace galign
