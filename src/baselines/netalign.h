// NetAlign (Bayati et al., ICDM 2009): sparse network alignment by
// max-product belief propagation. The problem: given a bipartite candidate
// set L of possible (source, target) pairs with prior weights, pick a
// matching maximizing  alpha * (matched prior weight) + beta * (#squares),
// where a "square" is a pair of chosen candidates (i,j), (i',j') with
// (i,i') an edge of G_s and (j,j') an edge of G_t — i.e. an overlapped
// edge.
//
// This implementation keeps NetAlign's structure — candidate generation
// from a prior, square enumeration, iterative message passing with row/
// column competition and damping, greedy rounding — with a simplified
// competitive max-product update (belief = local reward + clamped square
// support - strongest competitor), documented in DESIGN.md §3. Candidates
// outside L receive a score below every candidate's.
#pragma once

#include "align/alignment.h"

namespace galign {

/// NetAlign configuration.
struct NetAlignConfig {
  int64_t candidates_per_node = 10;  ///< top-k prior candidates per source
  double alpha = 1.0;  ///< weight of the prior (matched weight objective)
  double beta = 2.0;   ///< reward per completed square (overlap objective)
  int iterations = 25;
  double damping = 0.5;
};

/// \brief NetAlign aligner. Uses seed anchors (through the prior) when
/// given; falls back to the attribute prior otherwise.
class NetAlignAligner : public Aligner {
 public:
  explicit NetAlignAligner(NetAlignConfig config = {}) : config_(config) {}

  std::string name() const override { return "NetAlign"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

 private:
  NetAlignConfig config_;
};

}  // namespace galign
