#include "baselines/cenalp.h"

#include <algorithm>

#include "la/ops.h"

namespace galign {

Result<Matrix> CenalpAligner::Align(const AttributedGraph& source,
                                    const AttributedGraph& target,
                                    const Supervision& supervision,
                                    const RunContext& ctx) {
  const int64_t n1 = source.num_nodes();
  const int64_t n2 = target.num_nodes();
  if (n1 == 0 || n2 == 0) {
    return Status::InvalidArgument("empty network");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));
  Rng rng(config_.seed);

  // anchors[v] = matched target node or -1.
  std::vector<int64_t> anchors(n1, -1);
  for (const auto& [s, t] : supervision.seeds) {
    if (s >= 0 && s < n1 && t >= 0 && t < n2) anchors[s] = t;
  }
  if (supervision.seeds.empty()) {
    // Bootstrap: pair the highest-degree nodes of each side by rank.
    std::vector<int64_t> by_deg_s(n1), by_deg_t(n2);
    for (int64_t v = 0; v < n1; ++v) by_deg_s[v] = v;
    for (int64_t v = 0; v < n2; ++v) by_deg_t[v] = v;
    std::sort(by_deg_s.begin(), by_deg_s.end(), [&](int64_t a, int64_t b) {
      return source.Degree(a) > source.Degree(b);
    });
    std::sort(by_deg_t.begin(), by_deg_t.end(), [&](int64_t a, int64_t b) {
      return target.Degree(a) > target.Degree(b);
    });
    int64_t k = std::max<int64_t>(1, std::min(n1, n2) / 100);
    for (int64_t i = 0; i < k; ++i) anchors[by_deg_s[i]] = by_deg_t[i];
  }

  const int64_t vocab = n1 + n2;
  Matrix s_matrix;
  for (int round = 0; round <= config_.expansion_rounds; ++round) {
    // Best-so-far under a deadline: keep the score matrix of the last
    // completed round; if none completed yet, run round 0 regardless so an
    // expired context still yields a valid (cheapest) alignment.
    if (ctx.ShouldStop() && !s_matrix.empty()) break;
    auto walks =
        CrossNetworkWalks(source, target, anchors, config_.walks, &rng);
    SkipGramConfig sg = config_.skipgram;
    sg.seed = config_.skipgram.seed + static_cast<uint64_t>(round);
    Matrix emb = TrainSkipGram(walks, vocab, sg);

    // Source rows are tokens [0, n1); target node v' uses token n1+v' unless
    // it is anchored (merged token). For scoring, anchored targets reuse the
    // shared token embedding.
    std::vector<int64_t> reverse(n2, -1);
    for (int64_t v = 0; v < n1; ++v) {
      if (anchors[v] != -1) reverse[anchors[v]] = v;
    }
    Matrix zs = emb.Block(0, 0, n1, emb.cols());
    Matrix zt(n2, emb.cols());
    for (int64_t v = 0; v < n2; ++v) {
      int64_t token = reverse[v] != -1 ? reverse[v] : n1 + v;
      std::copy(emb.row_data(token), emb.row_data(token) + emb.cols(),
                zt.row_data(v));
    }
    s_matrix = MatMulTransposedB(zs, zt);

    if (round == config_.expansion_rounds) break;

    // Anchor expansion: promote the most confident mutual-best pairs.
    std::vector<int64_t> best_t(n1), best_s(n2, -1);
    std::vector<double> best_t_score(n1);
    for (int64_t v = 0; v < n1; ++v) {
      best_t[v] = ArgMaxRow(s_matrix, v);
      best_t_score[v] = s_matrix(v, best_t[v]);
    }
    std::vector<double> col_best(n2, -1e300);
    for (int64_t v = 0; v < n1; ++v) {
      for (int64_t u = 0; u < n2; ++u) {
        if (s_matrix(v, u) > col_best[u]) {
          col_best[u] = s_matrix(v, u);
          best_s[u] = v;
        }
      }
    }
    std::vector<std::pair<double, int64_t>> candidates;
    for (int64_t v = 0; v < n1; ++v) {
      if (anchors[v] != -1) continue;
      int64_t u = best_t[v];
      if (best_s[u] == v) candidates.emplace_back(best_t_score[v], v);
    }
    std::sort(candidates.rbegin(), candidates.rend());
    int64_t budget = std::max<int64_t>(
        1, static_cast<int64_t>(config_.expansion_fraction * n1));
    std::vector<bool> target_taken(n2, false);
    for (int64_t v = 0; v < n1; ++v) {
      if (anchors[v] != -1) target_taken[anchors[v]] = true;
    }
    for (const auto& [score, v] : candidates) {
      if (budget == 0) break;
      int64_t u = best_t[v];
      if (target_taken[u]) continue;
      anchors[v] = u;
      target_taken[u] = true;
      --budget;
    }
  }
  if (!s_matrix.AllFinite()) {
    return Status::Internal("CENALP produced non-finite scores");
  }
  return s_matrix;
}

}  // namespace galign
