#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

namespace galign {

Matrix::Matrix(int64_t rows, int64_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  GALIGN_DCHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int64_t>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int64_t>(rows.begin()->size());
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    GALIGN_DCHECK(static_cast<int64_t>(r.size()) == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Result<Matrix> Matrix::TryCreate(int64_t rows, int64_t cols, double fill,
                                 MemoryBudget* budget) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument(
        "Matrix::TryCreate: negative extent " + std::to_string(rows) + "x" +
        std::to_string(cols));
  }
  const uint64_t bytes = DenseBytes(rows, cols);
  if (bytes == MemoryBudget::kUnlimited) {
    return Status::ResourceExhausted(
        "Matrix::TryCreate: " + std::to_string(rows) + "x" +
        std::to_string(cols) + " overflows the addressable size");
  }
  if (budget != nullptr) {
    GALIGN_RETURN_NOT_OK(budget->Admit(
        bytes, std::to_string(rows) + "x" + std::to_string(cols) + " matrix"));
  }
  try {
    return Matrix(rows, cols, fill);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "Matrix::TryCreate: allocation of " + std::to_string(rows) + "x" +
        std::to_string(cols) + " (" + std::to_string(bytes) +
        " bytes) failed");
  } catch (const std::length_error&) {
    return Status::ResourceExhausted(
        "Matrix::TryCreate: " + std::to_string(rows) + "x" +
        std::to_string(cols) + " exceeds the allocator's maximum size");
  }
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Uniform(int64_t rows, int64_t cols, Rng* rng, double lo,
                       double hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Uniform(lo, hi);
  return m;
}

Matrix Matrix::Gaussian(int64_t rows, int64_t cols, Rng* rng, double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::Xavier(int64_t fan_in, int64_t fan_out, Rng* rng) {
  double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return Uniform(fan_in, fan_out, rng, -limit, limit);
}

void Matrix::Resize(int64_t rows, int64_t cols) {
  GALIGN_DCHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Result<double> Matrix::At(int64_t r, int64_t c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    return Status::OutOfRange("Matrix::At(" + std::to_string(r) + ", " +
                              std::to_string(c) + ") on " +
                              std::to_string(rows_) + "x" +
                              std::to_string(cols_));
  }
  return (*this)(r, c);
}

Matrix Matrix::Row(int64_t r) const {
  Matrix out(1, cols_);
  std::copy(row_data(r), row_data(r) + cols_, out.data());
  return out;
}

Matrix Matrix::Col(int64_t c) const {
  Matrix out(rows_, 1);
  for (int64_t r = 0; r < rows_; ++r) out(r, 0) = (*this)(r, c);
  return out;
}

Matrix Matrix::Block(int64_t r0, int64_t c0, int64_t nrows,
                     int64_t ncols) const {
  GALIGN_DCHECK(r0 >= 0 && c0 >= 0 && r0 + nrows <= rows_ &&
                c0 + ncols <= cols_);
  Matrix out(nrows, ncols);
  for (int64_t r = 0; r < nrows; ++r) {
    std::copy(row_data(r0 + r) + c0, row_data(r0 + r) + c0 + ncols,
              out.row_data(r));
  }
  return out;
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Scale(double v) {
  for (auto& x : data_) x *= v;
}

void Matrix::Add(const Matrix& other) {
  GALIGN_DCHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  GALIGN_DCHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * other.data_[i];
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::FrobeniusNorm() const { return std::sqrt(SquaredNorm()); }

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::RowNorm(int64_t r) const {
  double s = 0.0;
  const double* p = row_data(r);
  for (int64_t c = 0; c < cols_; ++c) s += p[c] * p[c];
  return std::sqrt(s);
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.SameShape(b));
  double m = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

void Matrix::NormalizeRows(double eps) {
  for (int64_t r = 0; r < rows_; ++r) {
    double n = RowNorm(r);
    if (n > eps) {
      double inv = 1.0 / n;
      double* p = row_data(r);
      for (int64_t c = 0; c < cols_; ++c) p[c] *= inv;
    }
  }
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix " << rows_ << "x" << cols_ << "\n";
  int64_t rr = std::min<int64_t>(rows_, max_rows);
  int64_t cc = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < rr; ++r) {
    os << "  [";
    for (int64_t c = 0; c < cc; ++c) {
      os << (c ? ", " : "") << (*this)(r, c);
    }
    if (cc < cols_) os << ", ...";
    os << "]\n";
  }
  if (rr < rows_) os << "  ...\n";
  return os.str();
}

}  // namespace galign
