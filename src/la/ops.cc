#include "la/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"

namespace galign {

namespace {

// ---------------------------------------------------------------------------
// Blocked GEMM engine.
//
// All three GEMM variants compute C(i, j) = sum_p opA(i, p) * opB(p, j) and
// differ only in how operand elements are gathered during packing, so they
// share one driver and one micro-kernel. Blocking parameters (doubles):
//   - micro-tile: kMr x kNr accumulators held in registers,
//   - A panel: kMc x kKc packed per tile (L2-resident),
//   - B panel: kKc x kNc packed per tile (streamed through the micro-kernel).
// Panels are zero-padded to multiples of kMr/kNr so the micro-kernel never
// branches on fringe logic; the write-back masks the padding out.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 8;
constexpr int64_t kMc = 96;    // multiple of kMr
constexpr int64_t kKc = 256;
constexpr int64_t kNc = 1024;  // multiple of kNr

static_assert(kMc % kMr == 0 && kNc % kNr == 0, "panel/tile mismatch");

// Packed-panel workspaces, reused across calls so steady-state GEMMs do no
// heap allocation. Thread-local: each pool worker packs the panels for the
// output tiles it owns.
thread_local std::vector<double> t_apack;
thread_local std::vector<double> t_bpack;

enum class GemmKind {
  kNN,  // C = A   * B
  kNT,  // C = A   * B^T
  kTN,  // C = A^T * B
};

// Packs the logical block opA[i0 : i0+mc, p0 : p0+kc] as kMr-row strips,
// strip-major then p-major: pack[s * kc * kMr + p * kMr + ii]. Rows past mc
// are padded with zeros.
void PackA(GemmKind kind, const Matrix& a, int64_t i0, int64_t mc, int64_t p0,
           int64_t kc, double* pack) {
  const int64_t strips = (mc + kMr - 1) / kMr;
  if (kind == GemmKind::kTN) {
    // opA(i, p) = a(p, i): walk rows of `a` once, scattering into strips.
    std::fill(pack, pack + strips * kc * kMr, 0.0);
    for (int64_t p = 0; p < kc; ++p) {
      const double* arow = a.row_data(p0 + p) + i0;
      for (int64_t i = 0; i < mc; ++i) {
        pack[(i / kMr) * kc * kMr + p * kMr + (i % kMr)] = arow[i];
      }
    }
    return;
  }
  // opA(i, p) = a(i, p): each strip gathers kMr matrix rows.
  for (int64_t s = 0; s < strips; ++s) {
    double* dst = pack + s * kc * kMr;
    const int64_t rows = std::min<int64_t>(kMr, mc - s * kMr);
    for (int64_t ii = 0; ii < rows; ++ii) {
      const double* arow = a.row_data(i0 + s * kMr + ii) + p0;
      for (int64_t p = 0; p < kc; ++p) dst[p * kMr + ii] = arow[p];
    }
    for (int64_t ii = rows; ii < kMr; ++ii) {
      for (int64_t p = 0; p < kc; ++p) dst[p * kMr + ii] = 0.0;
    }
  }
}

// Packs the logical block opB[p0 : p0+kc, j0 : j0+nc] as kNr-column strips,
// strip-major then p-major: pack[s * kc * kNr + p * kNr + jj]. Columns past
// nc are padded with zeros.
void PackB(GemmKind kind, const Matrix& b, int64_t p0, int64_t kc, int64_t j0,
           int64_t nc, double* pack) {
  const int64_t strips = (nc + kNr - 1) / kNr;
  if (kind == GemmKind::kNT) {
    // opB(p, j) = b(j, p): each strip gathers kNr matrix rows of b.
    for (int64_t s = 0; s < strips; ++s) {
      double* dst = pack + s * kc * kNr;
      const int64_t cols = std::min<int64_t>(kNr, nc - s * kNr);
      for (int64_t jj = 0; jj < cols; ++jj) {
        const double* brow = b.row_data(j0 + s * kNr + jj) + p0;
        for (int64_t p = 0; p < kc; ++p) dst[p * kNr + jj] = brow[p];
      }
      for (int64_t jj = cols; jj < kNr; ++jj) {
        for (int64_t p = 0; p < kc; ++p) dst[p * kNr + jj] = 0.0;
      }
    }
    return;
  }
  // opB(p, j) = b(p, j): walk rows of `b` once, slicing into strips.
  std::fill(pack, pack + strips * kc * kNr, 0.0);
  for (int64_t p = 0; p < kc; ++p) {
    const double* brow = b.row_data(p0 + p) + j0;
    for (int64_t s = 0; s < strips; ++s) {
      double* dst = pack + s * kc * kNr + p * kNr;
      const int64_t cols = std::min<int64_t>(kNr, nc - s * kNr);
      for (int64_t jj = 0; jj < cols; ++jj) dst[jj] = brow[s * kNr + jj];
    }
  }
}

// Computes one kMr x kNr output tile from packed strips. The accumulators
// live in registers for the whole kc loop; the jj loop vectorizes (8 doubles
// = one AVX-512 / two AVX2 lanes). `overwrite` stores on the first k-panel
// and adds on subsequent ones, which is what lets the *Into callers skip
// zero-filling the output.
void MicroKernel(const double* __restrict ap, const double* __restrict bp,
                 int64_t kc, double* c, int64_t ldc, int64_t mrem,
                 int64_t nrem, bool overwrite) {
  double acc[kMr * kNr] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const double* __restrict a = ap + p * kMr;
    const double* __restrict b = bp + p * kNr;
    for (int64_t ii = 0; ii < kMr; ++ii) {
      const double av = a[ii];
      double* __restrict arow = acc + ii * kNr;
      for (int64_t jj = 0; jj < kNr; ++jj) arow[jj] += av * b[jj];
    }
  }
  const int64_t mlim = std::min<int64_t>(kMr, mrem);
  if (nrem >= kNr) {
    for (int64_t ii = 0; ii < mlim; ++ii) {
      double* crow = c + ii * ldc;
      const double* arow = acc + ii * kNr;
      if (overwrite) {
        for (int64_t jj = 0; jj < kNr; ++jj) crow[jj] = arow[jj];
      } else {
        for (int64_t jj = 0; jj < kNr; ++jj) crow[jj] += arow[jj];
      }
    }
    return;
  }
  for (int64_t ii = 0; ii < mlim; ++ii) {
    double* crow = c + ii * ldc;
    const double* arow = acc + ii * kNr;
    for (int64_t jj = 0; jj < nrem; ++jj) {
      crow[jj] = overwrite ? arow[jj] : crow[jj] + arow[jj];
    }
  }
}

void GemmBlocked(GemmKind kind, const Matrix& a, const Matrix& b, Matrix* out,
                 bool accumulate) {
  GALIGN_DCHECK(out != &a && out != &b);
  int64_t m = 0, k = 0, n = 0;
  switch (kind) {
    case GemmKind::kNN:
      GALIGN_DCHECK(a.cols() == b.rows());
      m = a.rows(), k = a.cols(), n = b.cols();
      break;
    case GemmKind::kNT:
      GALIGN_DCHECK(a.cols() == b.cols());
      m = a.rows(), k = a.cols(), n = b.rows();
      break;
    case GemmKind::kTN:
      GALIGN_DCHECK(a.rows() == b.rows());
      m = a.cols(), k = a.rows(), n = b.cols();
      break;
  }
  if (accumulate) {
    GALIGN_DCHECK(out->rows() == m && out->cols() == n);
  } else {
    out->Resize(m, n);
  }
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) out->Fill(0.0);
    return;
  }
  const int64_t mt = (m + kMc - 1) / kMc;
  const int64_t nt = (n + kNc - 1) / kNc;
  const int64_t ldc = out->cols();
  // 2D decomposition over output tiles. Each tile is written by exactly one
  // task and k-panels are consumed in a fixed order, so the result does not
  // depend on how ParallelFor partitions the tile range.
  ParallelFor(
      0, mt * nt,
      [&](int64_t t0, int64_t t1) {
        std::vector<double>& apack = t_apack;
        std::vector<double>& bpack = t_bpack;
        apack.resize(kMc * kKc);
        bpack.resize(kKc * kNc);
        for (int64_t t = t0; t < t1; ++t) {
          const int64_t ic = (t / nt) * kMc;
          const int64_t jc = (t % nt) * kNc;
          const int64_t mc = std::min<int64_t>(kMc, m - ic);
          const int64_t nc = std::min<int64_t>(kNc, n - jc);
          const int64_t mstrips = (mc + kMr - 1) / kMr;
          const int64_t nstrips = (nc + kNr - 1) / kNr;
          for (int64_t pc = 0; pc < k; pc += kKc) {
            const int64_t kc = std::min<int64_t>(kKc, k - pc);
            PackA(kind, a, ic, mc, pc, kc, apack.data());
            PackB(kind, b, pc, kc, jc, nc, bpack.data());
            const bool overwrite = !accumulate && pc == 0;
            for (int64_t js = 0; js < nstrips; ++js) {
              const double* bstrip = bpack.data() + js * kc * kNr;
              for (int64_t is = 0; is < mstrips; ++is) {
                MicroKernel(apack.data() + is * kc * kMr, bstrip, kc,
                            out->row_data(ic + is * kMr) + jc + js * kNr, ldc,
                            mc - is * kMr, nc - js * kNr, overwrite);
              }
            }
          }
        }
      },
      /*min_chunk=*/1);
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulInto(a, b, &c);
  return c;
}

Matrix MatMulTransposedB(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransposedBInto(a, b, &c);
  return c;
}

Matrix MatMulTransposedA(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransposedAInto(a, b, &c);
  return c;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                bool accumulate) {
  GemmBlocked(GemmKind::kNN, a, b, out, accumulate);
}

void MatMulTransposedBInto(const Matrix& a, const Matrix& b, Matrix* out,
                           bool accumulate) {
  GemmBlocked(GemmKind::kNT, a, b, out, accumulate);
}

void MatMulTransposedAInto(const Matrix& a, const Matrix& b, Matrix* out,
                           bool accumulate) {
  GemmBlocked(GemmKind::kTN, a, b, out, accumulate);
}

Matrix Transpose(const Matrix& a) {
  Matrix t;
  TransposeInto(a, &t);
  return t;
}

void TransposeInto(const Matrix& a, Matrix* out) {
  GALIGN_DCHECK(out != &a);
  out->Resize(a.cols(), a.rows());
  constexpr int64_t kTb = 32;  // 32x32 doubles = two 4 KiB pages per block
  const int64_t rows = a.rows(), cols = a.cols();
  if (rows == 0 || cols == 0) return;
  const int64_t cblocks = (cols + kTb - 1) / kTb;
  // Parallelize over column blocks of `a` (row blocks of the output) so each
  // task writes a disjoint set of output rows.
  ParallelFor(
      0, cblocks,
      [&](int64_t b0, int64_t b1) {
        for (int64_t cb = b0; cb < b1; ++cb) {
          const int64_t c0 = cb * kTb;
          const int64_t c1 = std::min<int64_t>(c0 + kTb, cols);
          for (int64_t r0 = 0; r0 < rows; r0 += kTb) {
            const int64_t r1 = std::min<int64_t>(r0 + kTb, rows);
            for (int64_t r = r0; r < r1; ++r) {
              const double* arow = a.row_data(r);
              for (int64_t c = c0; c < c1; ++c) {
                (*out)(c, r) = arow[c];
              }
            }
          }
        }
      },
      /*min_chunk=*/1);
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.Add(b);
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.Axpy(-1.0, b);
  return c;
}

Matrix Scale(const Matrix& a, double alpha) {
  Matrix c = a;
  c.Scale(alpha);
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  for (int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] * pb[i];
  return c;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix c(a.rows(), a.cols());
  const double* pa = a.data();
  double* pc = c.data();
  for (int64_t i = 0; i < a.size(); ++i) pc[i] = f(pa[i]);
  return c;
}

Matrix Tanh(const Matrix& a) {
  Matrix c;
  TanhInto(a, &c);
  return c;
}

void TanhInto(const Matrix& a, Matrix* out) {
  if (out != &a) out->Resize(a.rows(), a.cols());
  const double* pa = a.data();
  double* pc = out->data();
  ParallelFor(0, a.size(), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) pc[i] = std::tanh(pa[i]);
  });
}

double Dot(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.SameShape(b));
  double s = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

double RowSquaredDistance(const Matrix& a, int64_t i, const Matrix& b,
                          int64_t j) {
  GALIGN_DCHECK(a.cols() == b.cols());
  const double* pa = a.row_data(i);
  const double* pb = b.row_data(j);
  double s = 0.0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    double d = pa[c] - pb[c];
    s += d * d;
  }
  return s;
}

double RowCosine(const Matrix& a, int64_t i, const Matrix& b, int64_t j) {
  GALIGN_DCHECK(a.cols() == b.cols());
  const double* pa = a.row_data(i);
  const double* pb = b.row_data(j);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    dot += pa[c] * pb[c];
    na += pa[c] * pa[c];
    nb += pb[c] * pb[c];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0;
  return dot / std::sqrt(na * nb);
}

int64_t ArgMaxRow(const Matrix& m, int64_t r) {
  const double* p = m.row_data(r);
  int64_t best = 0;
  for (int64_t c = 1; c < m.cols(); ++c) {
    if (p[c] > p[best]) best = c;
  }
  return best;
}

double MaxRow(const Matrix& m, int64_t r) {
  return m(r, ArgMaxRow(m, r));
}

void TopKSelect(const double* values, int64_t n, int64_t k, int64_t* idx_out,
                double* score_out) {
  if (k <= 0) return;
  // Bounded min-heap over (value, column): the root is the worst retained
  // candidate (smallest value, with the larger index losing ties), so the
  // scan evicts in O(log k) without materializing an n-length index vector.
  // Eviction is strict (>), so among equal values the earliest-seen (lowest)
  // indices are retained — the "lowest index wins" determinism contract.
  using Entry = std::pair<double, int64_t>;  // (value, column)
  auto better = [](const Entry& a, const Entry& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  const int64_t kept = std::min<int64_t>(k, std::max<int64_t>(n, 0));
  std::vector<Entry> heap;
  heap.reserve(kept);
  for (int64_t c = 0; c < kept; ++c) heap.emplace_back(values[c], c);
  std::make_heap(heap.begin(), heap.end(), better);
  for (int64_t c = kept; c < n; ++c) {
    Entry cand{values[c], c};
    if (better(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  for (int64_t j = 0; j < k; ++j) {
    if (j < kept) {
      idx_out[j] = heap[j].second;
      score_out[j] = heap[j].first;
    } else {
      idx_out[j] = -1;
      score_out[j] = -std::numeric_limits<double>::infinity();
    }
  }
}

std::vector<int64_t> TopKRow(const Matrix& m, int64_t r, int64_t k) {
  const int64_t n = m.cols();
  k = std::min<int64_t>(k, n);
  if (k <= 0) return {};
  std::vector<int64_t> idx(k);
  std::vector<double> score(k);
  TopKSelect(m.row_data(r), n, k, idx.data(), score.data());
  return idx;
}

int64_t RankInRow(const Matrix& m, int64_t r, int64_t col) {
  const double* p = m.row_data(r);
  const double target = p[col];
  int64_t greater = 0, equal_others = 0;
  for (int64_t c = 0; c < m.cols(); ++c) {
    if (c == col) continue;
    if (p[c] > target) {
      ++greater;
    } else if (p[c] == target) {
      ++equal_others;
    }
  }
  return 1 + greater + equal_others / 2;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  GALIGN_DCHECK(!parts.empty());
  int64_t rows = parts[0]->rows();
  int64_t cols = 0;
  for (const Matrix* p : parts) {
    GALIGN_DCHECK(p->rows() == rows);
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    double* orow = out.row_data(r);
    int64_t off = 0;
    for (const Matrix* p : parts) {
      const double* prow = p->row_data(r);
      std::copy(prow, prow + p->cols(), orow + off);
      off += p->cols();
    }
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out;
  SoftmaxRowsInto(a, &out);
  return out;
}

void SoftmaxRowsInto(const Matrix& a, Matrix* out) {
  if (out != &a) out->Resize(a.rows(), a.cols());
  const int64_t cols = a.cols();
  if (cols == 0) return;
  ParallelFor(
      0, a.rows(),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const double* p = a.row_data(r);
          double* o = out->row_data(r);
          double mx = p[0];
          for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, p[c]);
          double z = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            o[c] = std::exp(p[c] - mx);
            z += o[c];
          }
          for (int64_t c = 0; c < cols; ++c) o[c] /= z;
        }
      },
      /*min_chunk=*/64);
}

namespace reference {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (int64_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.row_data(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransposedB(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (int64_t j = 0; j < n; ++j) {
      const double* brow = b.row_data(j);
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
  return c;
}

Matrix MatMulTransposedA(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.rows() == b.rows());
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (int64_t p = 0; p < k; ++p) {
    const double* arow = a.row_data(p);
    const double* brow = b.row_data(p);
    for (int64_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.row_data(i);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace reference

}  // namespace galign
