#include "la/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace galign {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  ParallelFor(
      0, m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const double* arow = a.row_data(i);
          double* crow = c.row_data(i);
          for (int64_t p = 0; p < k; ++p) {
            const double av = arow[p];
            if (av == 0.0) continue;
            const double* brow = b.row_data(p);
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      /*min_chunk=*/16);
  return c;
}

Matrix MatMulTransposedB(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  ParallelFor(
      0, m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const double* arow = a.row_data(i);
          double* crow = c.row_data(i);
          for (int64_t j = 0; j < n; ++j) {
            const double* brow = b.row_data(j);
            double s = 0.0;
            for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
            crow[j] = s;
          }
        }
      },
      /*min_chunk=*/8);
  return c;
}

Matrix MatMulTransposedA(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.rows() == b.rows());
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  // Accumulate row-of-a outer products serially per output chunk to avoid
  // false sharing; parallelize over output rows (columns of a).
  ParallelFor(
      0, m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t p = 0; p < k; ++p) {
          const double* arow = a.row_data(p);
          const double* brow = b.row_data(p);
          for (int64_t i = r0; i < r1; ++i) {
            const double av = arow[i];
            if (av == 0.0) continue;
            double* crow = c.row_data(i);
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      /*min_chunk=*/16);
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  }
  return t;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.Add(b);
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.Axpy(-1.0, b);
  return c;
}

Matrix Scale(const Matrix& a, double alpha) {
  Matrix c = a;
  c.Scale(alpha);
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  for (int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] * pb[i];
  return c;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix c(a.rows(), a.cols());
  const double* pa = a.data();
  double* pc = c.data();
  for (int64_t i = 0; i < a.size(); ++i) pc[i] = f(pa[i]);
  return c;
}

Matrix Tanh(const Matrix& a) {
  Matrix c(a.rows(), a.cols());
  const double* pa = a.data();
  double* pc = c.data();
  ParallelFor(0, a.size(), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) pc[i] = std::tanh(pa[i]);
  });
  return c;
}

double Dot(const Matrix& a, const Matrix& b) {
  GALIGN_DCHECK(a.SameShape(b));
  double s = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

double RowSquaredDistance(const Matrix& a, int64_t i, const Matrix& b,
                          int64_t j) {
  GALIGN_DCHECK(a.cols() == b.cols());
  const double* pa = a.row_data(i);
  const double* pb = b.row_data(j);
  double s = 0.0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    double d = pa[c] - pb[c];
    s += d * d;
  }
  return s;
}

double RowCosine(const Matrix& a, int64_t i, const Matrix& b, int64_t j) {
  GALIGN_DCHECK(a.cols() == b.cols());
  const double* pa = a.row_data(i);
  const double* pb = b.row_data(j);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    dot += pa[c] * pb[c];
    na += pa[c] * pa[c];
    nb += pb[c] * pb[c];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0;
  return dot / std::sqrt(na * nb);
}

int64_t ArgMaxRow(const Matrix& m, int64_t r) {
  const double* p = m.row_data(r);
  int64_t best = 0;
  for (int64_t c = 1; c < m.cols(); ++c) {
    if (p[c] > p[best]) best = c;
  }
  return best;
}

double MaxRow(const Matrix& m, int64_t r) {
  return m(r, ArgMaxRow(m, r));
}

std::vector<int64_t> TopKRow(const Matrix& m, int64_t r, int64_t k) {
  const double* p = m.row_data(r);
  k = std::min<int64_t>(k, m.cols());
  std::vector<int64_t> idx(m.cols());
  for (int64_t c = 0; c < m.cols(); ++c) idx[c] = c;
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](int64_t a, int64_t b) { return p[a] > p[b]; });
  idx.resize(k);
  return idx;
}

int64_t RankInRow(const Matrix& m, int64_t r, int64_t col) {
  const double* p = m.row_data(r);
  const double target = p[col];
  int64_t greater = 0, equal_others = 0;
  for (int64_t c = 0; c < m.cols(); ++c) {
    if (c == col) continue;
    if (p[c] > target) {
      ++greater;
    } else if (p[c] == target) {
      ++equal_others;
    }
  }
  return 1 + greater + equal_others / 2;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  GALIGN_DCHECK(!parts.empty());
  int64_t rows = parts[0]->rows();
  int64_t cols = 0;
  for (const Matrix* p : parts) {
    GALIGN_DCHECK(p->rows() == rows);
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    double* orow = out.row_data(r);
    int64_t off = 0;
    for (const Matrix* p : parts) {
      const double* prow = p->row_data(r);
      std::copy(prow, prow + p->cols(), orow + off);
      off += p->cols();
    }
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double* p = a.row_data(r);
    double* o = out.row_data(r);
    double mx = p[0];
    for (int64_t c = 1; c < a.cols(); ++c) mx = std::max(mx, p[c]);
    double z = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(p[c] - mx);
      z += o[c];
    }
    for (int64_t c = 0; c < a.cols(); ++c) o[c] /= z;
  }
  return out;
}

}  // namespace galign
