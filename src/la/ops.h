// Dense kernels: GEMM variants, element-wise maps, row-wise reductions and
// top-k selection. All O(n^2)+ kernels parallelize over rows via the common
// thread pool.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "la/matrix.h"

namespace galign {

/// C = A * B. Shapes (m x k) * (k x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B^T — the layer-wise alignment kernel S = H_s H_t^T (Eq. 11).
Matrix MatMulTransposedB(const Matrix& a, const Matrix& b);

/// C = A^T * B.
Matrix MatMulTransposedA(const Matrix& a, const Matrix& b);

/// Out-of-place transpose.
Matrix Transpose(const Matrix& a);

/// C = A + B (shapes must match).
Matrix Add(const Matrix& a, const Matrix& b);

/// C = A - B (shapes must match).
Matrix Sub(const Matrix& a, const Matrix& b);

/// C = alpha * A.
Matrix Scale(const Matrix& a, double alpha);

/// Element-wise product (Hadamard).
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Applies f to every entry.
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

/// tanh applied element-wise (the paper's GCN activation, §IV-A).
Matrix Tanh(const Matrix& a);

/// <A, B> = sum_ij A_ij B_ij.
double Dot(const Matrix& a, const Matrix& b);

/// Squared Euclidean distance between row i of a and row j of b.
double RowSquaredDistance(const Matrix& a, int64_t i, const Matrix& b,
                          int64_t j);

/// Cosine similarity between row i of a and row j of b (0 if a row is ~0).
double RowCosine(const Matrix& a, int64_t i, const Matrix& b, int64_t j);

/// Index of the maximum entry in row r.
int64_t ArgMaxRow(const Matrix& m, int64_t r);

/// Maximum entry in row r.
double MaxRow(const Matrix& m, int64_t r);

/// Indices of the q largest entries of row r, in descending value order.
std::vector<int64_t> TopKRow(const Matrix& m, int64_t r, int64_t k);

/// Rank (1-based) of column `col` when row r is sorted descending. Ties use
/// the mid-rank (expected rank under random tie-breaking), so a degenerate
/// constant row ranks every column at ~(n+1)/2 instead of 1.
int64_t RankInRow(const Matrix& m, int64_t r, int64_t col);

/// Concatenates matrices horizontally ([A | B | ...]); equal row counts.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

}  // namespace galign
