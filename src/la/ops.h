// Dense kernels: GEMM variants, element-wise maps, row-wise reductions and
// top-k selection.
//
// The GEMM family (MatMul / MatMulTransposedB / MatMulTransposedA) is backed
// by a single cache-blocked, register-tiled kernel: operands are packed into
// contiguous MC x KC / KC x NC panels held in thread-local workspaces and
// consumed by a 4x8 micro-kernel the compiler auto-vectorizes. Work is
// decomposed over a 2D grid of output tiles so the n x n alignment product
// S = H_s H_t^T (Eq. 11) scales past row-parallelism. Every output tile is
// produced by exactly one task with a fixed accumulation order, so results
// are bitwise deterministic across runs regardless of thread scheduling.
//
// Each kernel has a `*Into(..., Matrix* out)` form that writes into a
// caller-owned matrix (reusing its allocation when the shape matches) and
// optionally accumulates (`out += ...`) — the autograd backward pass uses
// the accumulate forms to add straight into gradient buffers. The
// allocating forms are thin wrappers. Naive reference kernels are retained
// in `reference::` for equivalence tests and before/after benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "la/matrix.h"

namespace galign {

/// C = A * B. Shapes (m x k) * (k x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B^T — the layer-wise alignment kernel S = H_s H_t^T (Eq. 11).
Matrix MatMulTransposedB(const Matrix& a, const Matrix& b);

/// C = A^T * B.
Matrix MatMulTransposedA(const Matrix& a, const Matrix& b);

/// out = A * B, or out += A * B when accumulate is true. `out` must not
/// alias an input; when accumulating it must already have shape (m x n).
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                bool accumulate = false);

/// out = A * B^T (out += when accumulate). Same aliasing/shape contract.
void MatMulTransposedBInto(const Matrix& a, const Matrix& b, Matrix* out,
                           bool accumulate = false);

/// out = A^T * B (out += when accumulate). Same aliasing/shape contract.
void MatMulTransposedAInto(const Matrix& a, const Matrix& b, Matrix* out,
                           bool accumulate = false);

/// Out-of-place transpose.
Matrix Transpose(const Matrix& a);

/// out = A^T, cache-blocked and parallel over column blocks. `out` must not
/// alias `a`.
void TransposeInto(const Matrix& a, Matrix* out);

/// C = A + B (shapes must match).
Matrix Add(const Matrix& a, const Matrix& b);

/// C = A - B (shapes must match).
Matrix Sub(const Matrix& a, const Matrix& b);

/// C = alpha * A.
Matrix Scale(const Matrix& a, double alpha);

/// Element-wise product (Hadamard).
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Applies f to every entry.
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

/// tanh applied element-wise (the paper's GCN activation, §IV-A).
Matrix Tanh(const Matrix& a);

/// out = tanh(A) element-wise; out == &a computes in place.
void TanhInto(const Matrix& a, Matrix* out);

/// <A, B> = sum_ij A_ij B_ij.
double Dot(const Matrix& a, const Matrix& b);

/// Squared Euclidean distance between row i of a and row j of b.
double RowSquaredDistance(const Matrix& a, int64_t i, const Matrix& b,
                          int64_t j);

/// Cosine similarity between row i of a and row j of b (0 if a row is ~0).
double RowCosine(const Matrix& a, int64_t i, const Matrix& b, int64_t j);

/// Index of the maximum entry in row r.
int64_t ArgMaxRow(const Matrix& m, int64_t r);

/// Maximum entry in row r.
double MaxRow(const Matrix& m, int64_t r);

/// Indices of the q largest entries of row r, in descending value order.
/// Ties break toward the smaller column index. Uses a bounded heap —
/// O(n log k) time and O(k) extra space per call.
std::vector<int64_t> TopKRow(const Matrix& m, int64_t r, int64_t k);

/// \brief Canonical bounded-heap top-k selection over a contiguous value
/// array — THE tie-breaking contract of every ranking path in the repo.
///
/// Selects the k largest of values[0..n) into idx_out/score_out (each with
/// room for k entries), descending by value with ties broken toward the
/// smaller index ("lowest index wins"). Slots past the available entries
/// are padded with index -1 / score -infinity. TopKRow, the chunked top-k
/// scan (ChunkedTopK / TopKFromDense), and the ANN re-ranking kernels all
/// route through this one function so exact-vs-approximate recall
/// comparisons are well-defined regardless of block size or thread count.
void TopKSelect(const double* values, int64_t n, int64_t k, int64_t* idx_out,
                double* score_out);

/// Rank (1-based) of column `col` when row r is sorted descending. Ties use
/// the mid-rank (expected rank under random tie-breaking), so a degenerate
/// constant row ranks every column at ~(n+1)/2 instead of 1.
int64_t RankInRow(const Matrix& m, int64_t r, int64_t col);

/// Concatenates matrices horizontally ([A | B | ...]); equal row counts.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// out = row-wise softmax of A, parallel over rows; out == &a is allowed.
void SoftmaxRowsInto(const Matrix& a, Matrix* out);

namespace reference {

/// Naive triple-loop GEMM kernels kept as the ground truth for the blocked
/// implementations. Serial, allocation-per-call; use only in tests and
/// before/after benchmarks.
Matrix MatMul(const Matrix& a, const Matrix& b);
Matrix MatMulTransposedB(const Matrix& a, const Matrix& b);
Matrix MatMulTransposedA(const Matrix& a, const Matrix& b);

}  // namespace reference

}  // namespace galign
