// Dense row-major matrix of doubles. This is the workhorse value type of the
// library: GCN activations, alignment matrices, and embeddings are all
// Matrix instances. Heavy kernels live in la/ops.h.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/rng.h"
#include "common/status.h"

namespace galign {

/// \brief Dense row-major matrix of double.
///
/// Shapes are (rows, cols) with 64-bit extents. Element access is
/// bounds-unchecked in release builds (operator()) — use At() for checked
/// access. Copy is deep; move is O(1).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int64_t rows, int64_t cols, double fill = 0.0);
  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// \brief Fallible construction (DESIGN.md §9): validates extents,
  /// optionally pre-admits the allocation against `budget`, and converts
  /// std::bad_alloc into Status::ResourceExhausted instead of killing the
  /// process. Use this for size-dependent allocations (anything O(n1*n2));
  /// the throwing constructor remains for shapes bounded by configuration.
  [[nodiscard]] static Result<Matrix> TryCreate(int64_t rows, int64_t cols,
                                  double fill = 0.0,
                                  MemoryBudget* budget = nullptr);

  /// Identity matrix of size n.
  static Matrix Identity(int64_t n);
  /// Every entry drawn i.i.d. uniform in [lo, hi).
  static Matrix Uniform(int64_t rows, int64_t cols, Rng* rng, double lo = 0.0,
                        double hi = 1.0);
  /// Every entry drawn i.i.d. N(0, stddev^2).
  static Matrix Gaussian(int64_t rows, int64_t cols, Rng* rng,
                         double stddev = 1.0);
  /// Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
  static Matrix Xavier(int64_t fan_in, int64_t fan_out, Rng* rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_data(int64_t r) { return data_.data() + r * cols_; }
  const double* row_data(int64_t r) const { return data_.data() + r * cols_; }

  double& operator()(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  double operator()(int64_t r, int64_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access.
  [[nodiscard]] Result<double> At(int64_t r, int64_t c) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Copies row r into a new 1 x cols matrix.
  Matrix Row(int64_t r) const;
  /// Copies column c into a new rows x 1 matrix.
  Matrix Col(int64_t c) const;
  /// Copies the sub-block [r0, r0+nrows) x [c0, c0+ncols).
  Matrix Block(int64_t r0, int64_t c0, int64_t nrows, int64_t ncols) const;

  /// Reshapes to rows x cols without preserving contents. Reuses the
  /// existing allocation when the total size already matches, so kernels
  /// writing through `*Into(..., Matrix* out)` out-parameters avoid per-call
  /// allocation churn. Entries are unspecified after the call unless the
  /// caller overwrites them.
  void Resize(int64_t rows, int64_t cols);

  /// Sets all entries to v.
  void Fill(double v);
  /// In-place element-wise scale.
  void Scale(double v);
  /// In-place element-wise addition; shapes must match.
  void Add(const Matrix& other);
  /// this += alpha * other.
  void Axpy(double alpha, const Matrix& other);

  /// Sum of all entries.
  double Sum() const;
  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Largest absolute entry.
  double MaxAbs() const;
  /// Euclidean norm of row r.
  double RowNorm(int64_t r) const;

  /// True iff every entry is finite.
  bool AllFinite() const;

  /// Max |a - b| over entries; matrices must be the same shape.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  /// Normalizes each row to unit L2 norm (rows with ~zero norm are left).
  void NormalizeRows(double eps = 1e-12);

  /// Multi-line human-readable rendering (small matrices only).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_;
  int64_t cols_;
  // Tracked storage: every allocate/deallocate of Matrix payload reports to
  // the process-wide MemoryTracker gauge (DESIGN.md §9).
  std::vector<double, TrackingAllocator<double>> data_;
};

}  // namespace galign
