#include "la/decomposition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/fault.h"
#include "common/logging.h"
#include "la/ops.h"

namespace galign {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps,
                                          double tol, const RunContext* ctx) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires square matrix");
  }
  if (!a.AllFinite()) {
    return Status::InvalidArgument(
        "SymmetricEigen: input contains non-finite entries");
  }
  const int64_t n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) s += m(i, j) * m(i, j);
    }
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(1.0, a.MaxAbs());
  bool converged = (n <= 1);
  int sweeps_run = 0;
  double residual = converged ? 0.0 : off_diag_norm();
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    if (ctx != nullptr && ctx->ShouldStop()) break;  // monotone: best-so-far
    ++sweeps_run;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = m(p, q);
        if (std::fabs(apq) <= tol * scale) continue;
        double app = m(p, p), aqq = m(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply Givens rotation to rows/cols p and q of m.
        for (int64_t k = 0; k < n; ++k) {
          double mkp = m(k, p), mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double mpk = m(p, k), mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    residual = fault::Perturb("la.jacobi.residual", off_diag_norm());
    converged = residual <= tol * scale * n;
  }
  if (!converged) {
    if (!std::isfinite(residual)) {
      return Status::NotConverged(
          "Jacobi eigen produced a non-finite residual (input likely "
          "ill-conditioned beyond recovery)");
    }
    // Jacobi sweeps never increase the off-diagonal mass, so the current
    // iterate is the best available — return it degraded rather than
    // discarding the work.
    GALIGN_LOG(Warning) << "Jacobi eigen: off-diagonal residual " << residual
                        << " above tolerance after " << sweeps_run
                        << " sweep(s); returning best-so-far decomposition";
  }

  EigenDecomposition out;
  out.report.converged = converged;
  out.report.iterations = sweeps_run;
  out.report.residual = residual;
  out.report.degraded = !converged;
  out.eigenvalues.resize(n);
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (int64_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return diag[x] > diag[y]; });
  out.eigenvectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = diag[order[j]];
    for (int64_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

Result<SVDResult> ThinSVD(const Matrix& a, int max_sweeps,
                          const RunContext* ctx) {
  const int64_t m = a.rows(), n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("ThinSVD of empty matrix");
  }
  const bool tall = m >= n;
  // Eigendecompose the smaller Gram matrix.
  Matrix gram = tall ? MatMulTransposedA(a, a)  // n x n = A^T A
                     : MatMulTransposedB(a, a);  // m x m = A A^T
  auto eig = SymmetricEigen(gram, max_sweeps, 1e-12, ctx);
  if (!eig.ok()) return eig.status();
  EigenDecomposition& e = eig.ValueOrDie();

  const int64_t r = tall ? n : m;
  SVDResult out;
  out.report = e.report;
  out.sigma.resize(r);
  for (int64_t i = 0; i < r; ++i) {
    out.sigma[i] = std::sqrt(std::max(0.0, e.eigenvalues[i]));
  }
  if (tall) {
    out.v = e.eigenvectors;  // n x n
    // U = A V Sigma^-1 (columns with sigma ~ 0 are zeroed).
    Matrix av = MatMul(a, out.v);
    out.u = Matrix(m, r);
    for (int64_t j = 0; j < r; ++j) {
      double inv = out.sigma[j] > 1e-14 ? 1.0 / out.sigma[j] : 0.0;
      for (int64_t i = 0; i < m; ++i) out.u(i, j) = av(i, j) * inv;
    }
  } else {
    out.u = e.eigenvectors;  // m x m
    Matrix atu = MatMulTransposedA(a, out.u);  // n x m
    out.v = Matrix(n, r);
    for (int64_t j = 0; j < r; ++j) {
      double inv = out.sigma[j] > 1e-14 ? 1.0 / out.sigma[j] : 0.0;
      for (int64_t i = 0; i < n; ++i) out.v(i, j) = atu(i, j) * inv;
    }
  }
  return out;
}

Result<Matrix> PseudoInverse(const Matrix& a, double rcond,
                             const RunContext* ctx) {
  auto svd = ThinSVD(a, 64, ctx);
  if (!svd.ok()) return svd.status();
  SVDResult& s = svd.ValueOrDie();
  double smax = s.sigma.empty() ? 0.0 : s.sigma[0];
  double cutoff = rcond * smax;
  // pinv(A) = V diag(1/sigma) U^T.
  Matrix vs = s.v;  // cols x r
  for (int64_t j = 0; j < static_cast<int64_t>(s.sigma.size()); ++j) {
    double inv = s.sigma[j] > cutoff ? 1.0 / s.sigma[j] : 0.0;
    for (int64_t i = 0; i < vs.rows(); ++i) vs(i, j) *= inv;
  }
  return MatMulTransposedB(vs, s.u);
}

Result<double> PowerIterationTopEigenvalue(const Matrix& a, int max_iters,
                                           double tol,
                                           ConvergenceReport* report,
                                           const RunContext* ctx) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    return Status::InvalidArgument("power iteration requires square matrix");
  }
  auto exit_with = [&](double value, bool converged, int iters,
                       double residual) {
    if (report != nullptr) {
      report->converged = converged;
      report->iterations = iters;
      report->residual = residual;
      report->degraded = !converged;
    }
    return value;
  };
  Rng rng(7);
  Matrix x = Matrix::Gaussian(a.rows(), 1, &rng);
  x.Scale(1.0 / x.FrobeniusNorm());
  double lambda = 0.0;
  double residual = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    if (ctx != nullptr && ctx->ShouldStop()) {
      return exit_with(lambda, false, it, residual);  // best-so-far estimate
    }
    Matrix y = MatMul(a, x);
    double norm = y.FrobeniusNorm();
    if (norm < 1e-30) return exit_with(0.0, true, it + 1, 0.0);
    y.Scale(1.0 / norm);
    double new_lambda = Dot(y, MatMul(a, y));
    residual = std::fabs(new_lambda - lambda);
    if (residual < tol * std::max(1.0, std::fabs(new_lambda))) {
      return exit_with(new_lambda, true, it + 1, residual);
    }
    lambda = new_lambda;
    x = y;
  }
  GALIGN_LOG(Warning) << "power iteration: residual " << residual
                      << " above tolerance after " << max_iters
                      << " iteration(s); returning best-so-far estimate";
  return exit_with(lambda, false, max_iters, residual);
}

}  // namespace galign
