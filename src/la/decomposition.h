// Matrix decompositions implemented from scratch: cyclic Jacobi for symmetric
// eigenproblems and a thin SVD built on top of it. Used by REGAL's low-rank
// similarity factorization and by PCA for the qualitative study.
//
// Every solver here runs under an explicit iteration + residual budget and
// reports how it exited through a ConvergenceReport (DESIGN.md §7). A solve
// that fails to meet its tolerance within the budget returns the best
// iterate it reached, marked `degraded`, instead of erroring out — callers
// that need strict convergence must check the report.
#pragma once

#include <cstdint>
#include <vector>

#include "common/convergence.h"
#include "common/run_context.h"
#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct EigenDecomposition {
  std::vector<double> eigenvalues;  // descending order
  Matrix eigenvectors;              // columns correspond to eigenvalues
  /// How the Jacobi sweep exited (iterations = sweeps executed, residual =
  /// final off-diagonal Frobenius mass relative scale).
  ConvergenceReport report;
};

/// \brief Eigendecomposition of a symmetric matrix via cyclic Jacobi
/// rotations.
///
/// Intended for small-to-medium matrices (landmark similarity blocks, PCA
/// covariances). If the off-diagonal mass fails to vanish within
/// max_sweeps, the best-so-far rotation is returned with
/// report.converged == false (Jacobi sweeps are monotone, so the last
/// iterate is the best).
/// All solvers below additionally accept an optional RunContext: when it
/// expires (deadline) or fires (cancellation), the sweep/iteration loop
/// stops at the current best iterate, reported degraded — the same graceful
/// exit as budget exhaustion (DESIGN.md §8).
[[nodiscard]] Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64,
                                          double tol = 1e-12,
                                          const RunContext* ctx = nullptr);

/// Thin SVD A = U diag(s) V^T with r = min(rows, cols) columns.
struct SVDResult {
  Matrix u;                    // rows x r
  std::vector<double> sigma;   // descending, size r
  Matrix v;                    // cols x r
  /// Propagated from the underlying Gram-matrix eigendecomposition.
  ConvergenceReport report;
};

/// \brief Thin SVD computed from the eigendecomposition of the Gram matrix
/// of the smaller dimension.
[[nodiscard]] Result<SVDResult> ThinSVD(const Matrix& a, int max_sweeps = 64,
                          const RunContext* ctx = nullptr);

/// Moore-Penrose pseudo-inverse (rank-revealing via ThinSVD; singular values
/// below rcond * sigma_max are treated as zero).
[[nodiscard]] Result<Matrix> PseudoInverse(const Matrix& a, double rcond = 1e-10,
                             const RunContext* ctx = nullptr);

/// Top eigenvalue/eigenvector of a symmetric matrix by power iteration.
/// Returns the last Rayleigh-quotient estimate even when the iteration did
/// not meet `tol` within max_iters; pass `report` to observe convergence.
[[nodiscard]] Result<double> PowerIterationTopEigenvalue(const Matrix& a,
                                           int max_iters = 1000,
                                           double tol = 1e-9,
                                           ConvergenceReport* report = nullptr,
                                           const RunContext* ctx = nullptr);

}  // namespace galign
