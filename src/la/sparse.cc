#include "la/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace galign {

SparseMatrix SparseMatrix::FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    int64_t r = triplets[i].row;
    int64_t c = triplets[i].col;
    GALIGN_DCHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    if (v != 0.0) {
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
      m.row_ptr_[r + 1]++;
    }
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::Identity(int64_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (int64_t i = 0; i < n; ++i) t.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(t));
}

double SparseMatrix::At(int64_t r, int64_t c) const {
  auto begin = col_idx_.begin() + row_ptr_[r];
  auto end = col_idx_.begin() + row_ptr_[r + 1];
  auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[it - col_idx_.begin()];
}

double SparseMatrix::RowSum(int64_t r) const {
  double s = 0.0;
  for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) s += values_[i];
  return s;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d(r, col_idx_[i]) = values_[i];
    }
  }
  return d;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      t.push_back({col_idx_[i], r, values_[i]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(t));
}

void SparseMatrix::ScaleRow(int64_t r, double s) {
  for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) values_[i] *= s;
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  GALIGN_DCHECK(cols_ == dense.rows());
  const int64_t d = dense.cols();
  Matrix out(rows_, d);
  ParallelFor(
      0, rows_,
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          double* out_row = out.row_data(r);
          for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
            const double v = values_[i];
            const double* in_row = dense.row_data(col_idx_[i]);
            for (int64_t c = 0; c < d; ++c) out_row[c] += v * in_row[c];
          }
        }
      },
      /*min_chunk=*/64);
  return out;
}

Matrix SparseMatrix::TransposedMultiply(const Matrix& dense) const {
  GALIGN_DCHECK(rows_ == dense.rows());
  // Scatter-based transpose multiply is not trivially parallel over rows of
  // the output; build the transpose once for large inputs instead. For our
  // symmetric propagation matrices this path is rarely hot.
  return Transposed().Multiply(dense);
}

Result<SparseMatrix> SparseMatrix::NormalizedWithSelfLoops() const {
  const int64_t n = rows_;
  std::vector<double> ones(n, 1.0);
  return NormalizedWithInfluence(ones);
}

Result<SparseMatrix> SparseMatrix::NormalizedWithInfluence(
    const std::vector<double>& alpha) const {
  if (rows_ != cols_) {
    return Status::InvalidArgument(
        "normalization requires a square matrix, got " +
        std::to_string(rows_) + "x" + std::to_string(cols_));
  }
  if (static_cast<int64_t>(alpha.size()) != rows_) {
    return Status::InvalidArgument("influence vector size mismatch");
  }
  const int64_t n = rows_;
  // Â = A + I. D̂ = rowsum(Â). Dq = D̂ * Q with Q = diag(alpha).
  std::vector<double> inv_sqrt(n);
  for (int64_t r = 0; r < n; ++r) {
    double deg = RowSum(r) + 1.0;  // self loop
    double dq = deg * alpha[r];
    if (dq <= 0.0) {
      return Status::InvalidArgument("non-positive scaled degree at node " +
                                     std::to_string(r));
    }
    inv_sqrt[r] = 1.0 / std::sqrt(dq);
  }
  std::vector<Triplet> t;
  t.reserve(nnz() + n);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      int64_t c = col_idx_[i];
      t.push_back({r, c, values_[i] * inv_sqrt[r] * inv_sqrt[c]});
    }
    t.push_back({r, r, inv_sqrt[r] * inv_sqrt[r]});
  }
  return SparseMatrix::FromTriplets(n, n, std::move(t));
}

}  // namespace galign
