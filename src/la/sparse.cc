#include "la/sparse.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <stdexcept>

#include "common/logging.h"
#include "common/parallel.h"

namespace galign {

SparseMatrix::SparseMatrix(const SparseMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(other.row_ptr_),
      col_idx_(other.col_idx_),
      values_(other.values_) {}

SparseMatrix& SparseMatrix::operator=(const SparseMatrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  col_idx_ = other.col_idx_;
  values_ = other.values_;
  InvalidateTransposeCache();
  return *this;
}

SparseMatrix::SparseMatrix(SparseMatrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(std::move(other.row_ptr_)),
      col_idx_(std::move(other.col_idx_)),
      values_(std::move(other.values_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

SparseMatrix& SparseMatrix::operator=(SparseMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = std::move(other.row_ptr_);
  col_idx_ = std::move(other.col_idx_);
  values_ = std::move(other.values_);
  other.rows_ = 0;
  other.cols_ = 0;
  InvalidateTransposeCache();
  return *this;
}

void SparseMatrix::InvalidateTransposeCache() {
  std::lock_guard<std::mutex> lock(transpose_mu_);
  transpose_cache_.reset();
}

SparseMatrix SparseMatrix::FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    int64_t r = triplets[i].row;
    int64_t c = triplets[i].col;
    GALIGN_DCHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    if (v != 0.0) {
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
      m.row_ptr_[r + 1]++;
    }
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

Result<SparseMatrix> SparseMatrix::TryCreate(int64_t rows, int64_t cols,
                                             std::vector<Triplet> triplets,
                                             MemoryBudget* budget) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument(
        "SparseMatrix::TryCreate: negative extent " + std::to_string(rows) +
        "x" + std::to_string(cols));
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::InvalidArgument(
          "SparseMatrix::TryCreate: triplet (" + std::to_string(t.row) +
          ", " + std::to_string(t.col) + ") outside " + std::to_string(rows) +
          "x" + std::to_string(cols));
    }
  }
  // CSR footprint upper bound: col_idx (8B) + values (8B) per entry, the
  // triplet sort scratch (~24B per entry, transient), row_ptr 8B per row.
  const uint64_t nnz = static_cast<uint64_t>(triplets.size());
  const uint64_t bytes = nnz * (sizeof(int64_t) + sizeof(double)) +
                         static_cast<uint64_t>(rows + 1) * sizeof(int64_t);
  if (budget != nullptr) {
    GALIGN_RETURN_NOT_OK(budget->Admit(
        bytes, std::to_string(rows) + "x" + std::to_string(cols) +
                   " sparse matrix (" + std::to_string(nnz) + " nnz)"));
  }
  try {
    return FromTriplets(rows, cols, std::move(triplets));
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "SparseMatrix::TryCreate: allocation of " + std::to_string(nnz) +
        " entries failed");
  } catch (const std::length_error&) {
    return Status::ResourceExhausted(
        "SparseMatrix::TryCreate: entry count exceeds the allocator's "
        "maximum size");
  }
}

SparseMatrix SparseMatrix::Identity(int64_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (int64_t i = 0; i < n; ++i) t.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(t));
}

double SparseMatrix::At(int64_t r, int64_t c) const {
  auto begin = col_idx_.begin() + row_ptr_[r];
  auto end = col_idx_.begin() + row_ptr_[r + 1];
  auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[it - col_idx_.begin()];
}

double SparseMatrix::RowSum(int64_t r) const {
  double s = 0.0;
  for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) s += values_[i];
  return s;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d(r, col_idx_[i]) = values_[i];
    }
  }
  return d;
}

SparseMatrix SparseMatrix::Transposed() const {
  // Counting sort by destination row — O(e), no triplet sort. Source rows
  // are visited in ascending order, so each transposed row stays sorted.
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  for (int64_t c : col_idx_) t.row_ptr_[c + 1]++;
  for (int64_t r = 0; r < cols_; ++r) t.row_ptr_[r + 1] += t.row_ptr_[r];
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const int64_t pos = cursor[col_idx_[i]]++;
      t.col_idx_[pos] = r;
      t.values_[pos] = values_[i];
    }
  }
  return t;
}

std::shared_ptr<const SparseMatrix> SparseMatrix::TransposedCached() const {
  std::lock_guard<std::mutex> lock(transpose_mu_);
  if (!transpose_cache_) {
    transpose_cache_ = std::make_shared<const SparseMatrix>(Transposed());
  }
  return transpose_cache_;
}

void SparseMatrix::ScaleRow(int64_t r, double s) {
  InvalidateTransposeCache();
  for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) values_[i] *= s;
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  Matrix out;
  MultiplyInto(dense, &out);
  return out;
}

void SparseMatrix::MultiplyInto(const Matrix& dense, Matrix* out,
                                bool accumulate) const {
  GALIGN_DCHECK(cols_ == dense.rows());
  GALIGN_DCHECK(out != &dense);
  const int64_t d = dense.cols();
  if (accumulate) {
    GALIGN_DCHECK(out->rows() == rows_ && out->cols() == d);
  } else {
    out->Resize(rows_, d);
  }
  if (rows_ == 0 || d == 0) return;
  // nnz-balanced row partition: chunk c covers rows [bounds[c], bounds[c+1])
  // holding ~nnz/chunks stored entries each, so one hub row of a power-law
  // graph cannot serialize the whole multiply. The partition depends only on
  // the matrix (not on scheduling), and each output row is written by
  // exactly one task in stored order — results are bitwise deterministic.
  const int64_t max_chunks =
      std::max<int64_t>(1, std::min<int64_t>(rows_, ParallelismLevel() * 4));
  std::vector<int64_t> bounds(max_chunks + 1, rows_);
  bounds[0] = 0;
  for (int64_t c = 1; c < max_chunks; ++c) {
    const int64_t target = nnz() * c / max_chunks;
    const auto it =
        std::lower_bound(row_ptr_.begin(), row_ptr_.end() - 1, target);
    bounds[c] = std::max<int64_t>(it - row_ptr_.begin(), bounds[c - 1]);
  }
  ParallelFor(
      0, max_chunks,
      [&](int64_t c0, int64_t c1) {
        for (int64_t chunk = c0; chunk < c1; ++chunk) {
          for (int64_t r = bounds[chunk]; r < bounds[chunk + 1]; ++r) {
            double* out_row = out->row_data(r);
            if (!accumulate) std::fill(out_row, out_row + d, 0.0);
            int64_t i = row_ptr_[r];
            const int64_t e = row_ptr_[r + 1];
            // 4-way unroll: one pass over out_row per four stored entries
            // instead of one per entry (SpMM is bandwidth-bound on the
            // repeated output-row traffic, not on flops).
            for (; i + 4 <= e; i += 4) {
              const double v0 = values_[i], v1 = values_[i + 1];
              const double v2 = values_[i + 2], v3 = values_[i + 3];
              const double* r0 = dense.row_data(col_idx_[i]);
              const double* r1 = dense.row_data(col_idx_[i + 1]);
              const double* r2 = dense.row_data(col_idx_[i + 2]);
              const double* r3 = dense.row_data(col_idx_[i + 3]);
              for (int64_t c = 0; c < d; ++c) {
                out_row[c] +=
                    v0 * r0[c] + v1 * r1[c] + v2 * r2[c] + v3 * r3[c];
              }
            }
            for (; i < e; ++i) {
              const double v = values_[i];
              const double* in_row = dense.row_data(col_idx_[i]);
              for (int64_t c = 0; c < d; ++c) out_row[c] += v * in_row[c];
            }
          }
        }
      },
      /*min_chunk=*/1);
}

Matrix SparseMatrix::TransposedMultiply(const Matrix& dense) const {
  Matrix out;
  TransposedMultiplyInto(dense, &out);
  return out;
}

void SparseMatrix::TransposedMultiplyInto(const Matrix& dense, Matrix* out,
                                          bool accumulate) const {
  GALIGN_DCHECK(rows_ == dense.rows());
  TransposedCached()->MultiplyInto(dense, out, accumulate);
}

Result<SparseMatrix> SparseMatrix::NormalizedWithSelfLoops() const {
  const int64_t n = rows_;
  std::vector<double> ones(n, 1.0);
  return NormalizedWithInfluence(ones);
}

Result<SparseMatrix> SparseMatrix::NormalizedWithInfluence(
    const std::vector<double>& alpha) const {
  if (rows_ != cols_) {
    return Status::InvalidArgument(
        "normalization requires a square matrix, got " +
        std::to_string(rows_) + "x" + std::to_string(cols_));
  }
  if (static_cast<int64_t>(alpha.size()) != rows_) {
    return Status::InvalidArgument("influence vector size mismatch");
  }
  const int64_t n = rows_;
  // Â = A + I. D̂ = rowsum(Â). Dq = D̂ * Q with Q = diag(alpha).
  std::vector<double> inv_sqrt(n);
  for (int64_t r = 0; r < n; ++r) {
    double deg = RowSum(r) + 1.0;  // self loop
    double dq = deg * alpha[r];
    if (dq <= 0.0) {
      return Status::InvalidArgument("non-positive scaled degree at node " +
                                     std::to_string(r));
    }
    inv_sqrt[r] = 1.0 / std::sqrt(dq);
  }
  std::vector<Triplet> t;
  t.reserve(nnz() + n);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      int64_t c = col_idx_[i];
      t.push_back({r, c, values_[i] * inv_sqrt[r] * inv_sqrt[c]});
    }
    t.push_back({r, r, inv_sqrt[r] * inv_sqrt[r]});
  }
  return SparseMatrix::FromTriplets(n, n, std::move(t));
}

}  // namespace galign
