// Compressed sparse row (CSR) matrix. Adjacency matrices and normalized
// Laplacians are stored in this format; SpMM against dense activations is the
// dominant kernel of GCN training (paper §VI-C relies on this sparsity for
// the O(ed) complexity bound).
//
// SpMM parallelism is nnz-balanced: row ranges are chosen so each task owns
// roughly equal stored-entry counts, which keeps power-law graphs (a few
// huge-degree rows, many tiny ones) from serializing on one chunk. The
// transpose needed by TransposedMultiply is built once with a counting sort
// and memoized, so repeated backward passes over the same propagation matrix
// stop redoing O(e) work per call.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/memory_budget.h"
#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// A (row, col, value) entry used to build sparse matrices.
struct Triplet {
  int64_t row;
  int64_t col;
  double value;
};

/// \brief Immutable CSR sparse matrix of double.
///
/// Construction sorts and coalesces duplicate coordinates (values of
/// duplicates are summed). Structure is fixed after construction; values can
/// be rescaled via ScaleRow/mutable_values for the noise-aware propagation
/// of Eq. 15 (either invalidates the memoized transpose).
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}
  SparseMatrix(const SparseMatrix& other);
  SparseMatrix& operator=(const SparseMatrix& other);
  SparseMatrix(SparseMatrix&& other) noexcept;
  SparseMatrix& operator=(SparseMatrix&& other) noexcept;

  /// Builds from triplets; duplicates are summed, explicit zeros dropped.
  static SparseMatrix FromTriplets(int64_t rows, int64_t cols,
                                   std::vector<Triplet> triplets);

  /// \brief Fallible FromTriplets (DESIGN.md §9): validates extents and
  /// triplet coordinates, optionally pre-admits the CSR footprint
  /// (~20 bytes/nnz + 8 bytes/row) against `budget`, and converts
  /// std::bad_alloc into Status::ResourceExhausted.
  [[nodiscard]] static Result<SparseMatrix> TryCreate(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets,
                                        MemoryBudget* budget = nullptr);

  /// Sparse identity.
  static SparseMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() {
    InvalidateTransposeCache();
    return values_;
  }

  /// Number of stored entries in row r.
  int64_t RowNnz(int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// Value at (r, c); zero if not stored. O(log nnz(row)).
  double At(int64_t r, int64_t c) const;

  /// Sum of stored values in row r.
  double RowSum(int64_t r) const;

  /// Dense copy (small matrices / tests only).
  Matrix ToDense() const;

  /// Transposed copy, built in O(e) with a counting sort.
  SparseMatrix Transposed() const;

  /// Memoized transpose, built on first use and shared by subsequent calls
  /// (TransposedMultiply uses this). Invalidated by ScaleRow /
  /// mutable_values. Thread-safe.
  std::shared_ptr<const SparseMatrix> TransposedCached() const;

  /// Multiplies all stored values in row r by s.
  void ScaleRow(int64_t r, double s);

  /// out = this * dense. Parallel over nnz-balanced row ranges.
  /// Shapes: (r x c) * (c x d).
  Matrix Multiply(const Matrix& dense) const;

  /// out = this * dense (out += when accumulate). `out` must not alias
  /// `dense`; when accumulating it must already have shape (rows x d).
  void MultiplyInto(const Matrix& dense, Matrix* out,
                    bool accumulate = false) const;

  /// out = this^T * dense, via the memoized transpose.
  Matrix TransposedMultiply(const Matrix& dense) const;

  /// out = this^T * dense (out += when accumulate).
  void TransposedMultiplyInto(const Matrix& dense, Matrix* out,
                              bool accumulate = false) const;

  /// Returns D^{-1/2} (this + I) D^{-1/2} where D is the degree (row-sum)
  /// matrix of (this + I) — the normalized Laplacian-style propagation
  /// matrix C of GCN (paper Eq. 1). Requires a square matrix.
  [[nodiscard]] Result<SparseMatrix> NormalizedWithSelfLoops() const;

  /// Like NormalizedWithSelfLoops but with per-node influence factors alpha:
  /// C_q = Dq^{-1/2} Â Dq^{-1/2}, Dq = D̂ Q, Q = diag(alpha) (paper Eq. 15).
  [[nodiscard]] Result<SparseMatrix> NormalizedWithInfluence(
      const std::vector<double>& alpha) const;

 private:
  void InvalidateTransposeCache();

  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;   // size rows + 1
  std::vector<int64_t> col_idx_;   // size nnz
  std::vector<double> values_;     // size nnz

  // Lazily built transpose shared across TransposedMultiply calls. Guarded
  // by transpose_mu_; deliberately not propagated by copy/move (rebuilt on
  // demand).
  mutable std::mutex transpose_mu_;
  mutable std::shared_ptr<const SparseMatrix> transpose_cache_;  // galign: guarded_by(transpose_mu_)
};

}  // namespace galign
