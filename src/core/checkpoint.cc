#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/durable_io.h"
#include "common/fault.h"
#include "common/logging.h"
#include "core/model_io.h"

namespace galign {

namespace {

constexpr char kMagic[] = "galign-ckpt-v1";
constexpr char kManifestMagic[] = "galign-ckpt-manifest-v1";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kCkptPrefix[] = "ckpt_";

// Doubles are stored bit-exactly via common/durable_io.h HexDouble /
// ParseHexDouble; matrix lists go through the shared core/model_io.h
// EmitMatrixList / ParseMatrixList codec.

std::string CheckpointFileName(int epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08d", kCkptPrefix, epoch);
  return buf;
}

// Epoch encoded in a checkpoint filename, or -1 when the name does not
// match ckpt_<digits>.
int EpochOfFileName(const std::string& name) {
  const size_t prefix_len = sizeof(kCkptPrefix) - 1;
  if (name.compare(0, prefix_len, kCkptPrefix) != 0) return -1;
  const std::string digits = name.substr(prefix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return static_cast<int>(std::strtol(digits.c_str(), nullptr, 10));
}

}  // namespace

std::string SerializeCheckpoint(const TrainerCheckpoint& ckpt) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "epoch " << ckpt.epoch << "\n";
  out << "lr " << HexDouble(ckpt.lr) << "\n";
  out << "adam_step " << ckpt.adam_step << "\n";
  out << "snapshot_loss " << HexDouble(ckpt.snapshot_loss) << "\n";
  out << "best_loss " << HexDouble(ckpt.best_loss) << "\n";
  out << "epochs_without_improvement " << ckpt.epochs_without_improvement
      << "\n";
  out << "epochs_run " << ckpt.epochs_run << "\n";
  out << "steps_applied " << ckpt.steps_applied << "\n";
  out << "rollbacks " << ckpt.rollbacks << "\n";
  out << "rollback_epochs " << ckpt.rollback_epochs.size();
  for (int e : ckpt.rollback_epochs) out << " " << e;
  out << "\n";
  out << "final_lr " << HexDouble(ckpt.final_lr) << "\n";
  out << "final_loss " << HexDouble(ckpt.final_loss) << "\n";
  out << "loss_history " << ckpt.loss_history.size();
  for (double h : ckpt.loss_history) out << " " << HexDouble(h);
  out << "\n";
  // mt19937_64 serializes to whitespace-separated integers; token count is
  // recorded so the parser knows how many to consume.
  {
    std::istringstream count_rng(ckpt.rng_state);
    std::string tok;
    size_t n = 0;
    while (count_rng >> tok) ++n;
    out << "rng " << n;
    if (n) out << " " << ckpt.rng_state;
    out << "\n";
  }
  EmitMatrixList(&out, "weights", ckpt.weights);
  EmitMatrixList(&out, "adam_m", ckpt.adam_m);
  EmitMatrixList(&out, "adam_v", ckpt.adam_v);
  EmitMatrixList(&out, "snapshot", ckpt.snapshot);
  out << "end\n";
  return out.str();
}

Result<TrainerCheckpoint> ParseCheckpoint(const std::string& payload,
                                          const std::string& context) {
  std::istringstream in(payload);
  std::string tok;
  if (!(in >> tok) || tok != kMagic) {
    return Status::IOError("not a galign checkpoint (bad magic) in " +
                           context);
  }
  TrainerCheckpoint ckpt;

  auto expect_key = [&](const char* key) -> Status {
    if (!(in >> tok) || tok != key) {
      return Status::IOError("expected '" + std::string(key) + "' in " +
                             context);
    }
    return Status::OK();
  };
  auto read_int = [&](const char* key, auto* value) -> Status {
    GALIGN_RETURN_NOT_OK(expect_key(key));
    if (!(in >> *value)) {
      return Status::IOError("bad integer for '" + std::string(key) +
                             "' in " + context);
    }
    return Status::OK();
  };
  auto read_double = [&](const char* key, double* value) -> Status {
    GALIGN_RETURN_NOT_OK(expect_key(key));
    if (!(in >> tok)) {
      return Status::IOError("truncated at '" + std::string(key) + "' in " +
                             context);
    }
    auto v = ParseHexDouble(tok, context);
    GALIGN_RETURN_NOT_OK(v.status());
    *value = v.ValueOrDie();
    return Status::OK();
  };

  GALIGN_RETURN_NOT_OK(read_int("epoch", &ckpt.epoch));
  GALIGN_RETURN_NOT_OK(read_double("lr", &ckpt.lr));
  GALIGN_RETURN_NOT_OK(read_int("adam_step", &ckpt.adam_step));
  GALIGN_RETURN_NOT_OK(read_double("snapshot_loss", &ckpt.snapshot_loss));
  GALIGN_RETURN_NOT_OK(read_double("best_loss", &ckpt.best_loss));
  GALIGN_RETURN_NOT_OK(read_int("epochs_without_improvement",
                                &ckpt.epochs_without_improvement));
  GALIGN_RETURN_NOT_OK(read_int("epochs_run", &ckpt.epochs_run));
  GALIGN_RETURN_NOT_OK(read_int("steps_applied", &ckpt.steps_applied));
  GALIGN_RETURN_NOT_OK(read_int("rollbacks", &ckpt.rollbacks));

  size_t count = 0;
  GALIGN_RETURN_NOT_OK(read_int("rollback_epochs", &count));
  if (count > 1u << 20) {
    return Status::IOError("absurd rollback_epochs count in " + context);
  }
  ckpt.rollback_epochs.resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> ckpt.rollback_epochs[i])) {
      return Status::IOError("truncated rollback_epochs in " + context);
    }
  }

  GALIGN_RETURN_NOT_OK(read_double("final_lr", &ckpt.final_lr));
  GALIGN_RETURN_NOT_OK(read_double("final_loss", &ckpt.final_loss));

  GALIGN_RETURN_NOT_OK(read_int("loss_history", &count));
  if (count > 1u << 24) {
    return Status::IOError("absurd loss_history count in " + context);
  }
  ckpt.loss_history.resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> tok)) {
      return Status::IOError("truncated loss_history in " + context);
    }
    auto v = ParseHexDouble(tok, context);
    GALIGN_RETURN_NOT_OK(v.status());
    ckpt.loss_history[i] = v.ValueOrDie();
  }

  GALIGN_RETURN_NOT_OK(read_int("rng", &count));
  if (count > 1u << 16) {
    return Status::IOError("absurd rng token count in " + context);
  }
  {
    std::ostringstream rng;
    for (size_t i = 0; i < count; ++i) {
      if (!(in >> tok)) {
        return Status::IOError("truncated rng state in " + context);
      }
      if (i) rng << " ";
      rng << tok;
    }
    ckpt.rng_state = rng.str();
  }

  GALIGN_RETURN_NOT_OK(ParseMatrixList(&in, "weights", &ckpt.weights, context));
  GALIGN_RETURN_NOT_OK(ParseMatrixList(&in, "adam_m", &ckpt.adam_m, context));
  GALIGN_RETURN_NOT_OK(ParseMatrixList(&in, "adam_v", &ckpt.adam_v, context));
  GALIGN_RETURN_NOT_OK(
      ParseMatrixList(&in, "snapshot", &ckpt.snapshot, context));

  if (!(in >> tok) || tok != "end") {
    return Status::IOError("missing 'end' sentinel in " + context);
  }
  return ckpt;
}

CheckpointManager::CheckpointManager(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep < 1 ? 1 : keep) {}

std::string CheckpointManager::ManifestPath() const {
  return dir_ + "/" + kManifestName;
}

Status CheckpointManager::Save(const TrainerCheckpoint& ckpt) {
  if (fault::ShouldFailIO("io.checkpoint.save")) {
    return Status::IOError("injected fault: checkpoint save to " + dir_);
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir " + dir_ + ": " +
                           ec.message());
  }

  const std::string name = CheckpointFileName(ckpt.epoch);
  GALIGN_RETURN_NOT_OK(AtomicWriteFile(
      dir_ + "/" + name, AppendCrc32Trailer(SerializeCheckpoint(ckpt))));

  // Shared retention pass (common/durable_io.h): keep-last-N CRC-valid
  // checkpoints, never the pinned (last-resumed) epoch, GC torn files.
  auto report = ApplyGenerationRetention(dir_, kManifestMagic, EpochOfFileName,
                                         keep_, pinned_.load());
  GALIGN_RETURN_NOT_OK(report.status());
  for (const std::string& torn : report.ValueOrDie().torn_removed) {
    GALIGN_LOG(Warning) << "Checkpoint " << dir_ << "/" << torn
                        << " failed its CRC; garbage-collected";
  }
  return Status::OK();
}

std::vector<std::string> CheckpointManager::Candidates() const {
  // Preferred source: the manifest (it reflects save order even if epoch
  // numbering ever changes). A missing/corrupt manifest degrades to a
  // directory scan — the checkpoint files are self-validating anyway.
  auto content = ReadFileToString(ManifestPath());
  if (content.ok()) {
    auto payload = StripAndVerifyCrc32Trailer(
        content.ValueOrDie(), /*require_trailer=*/true, ManifestPath());
    if (payload.ok()) {
      std::istringstream in(payload.ValueOrDie());
      std::string tok;
      if (in >> tok && tok == kManifestMagic) {
        std::vector<std::string> names;
        while (in >> tok) {
          if (EpochOfFileName(tok) >= 0) names.push_back(tok);
        }
        if (!names.empty()) return names;
      }
    } else {
      GALIGN_LOG(Warning) << "Checkpoint manifest unreadable ("
                          << payload.status().message()
                          << "); falling back to directory scan";
    }
  }
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string fname = entry.path().filename().string();
    if (EpochOfFileName(fname) >= 0) names.push_back(fname);
  }
  std::sort(names.begin(), names.end(), [](const auto& a, const auto& b) {
    return EpochOfFileName(a) > EpochOfFileName(b);
  });
  return names;
}

Result<TrainerCheckpoint> CheckpointManager::LoadLatest() const {
  // "Nothing saved yet" (NotFound) and "everything saved is torn" (IOError)
  // are different failures: the first is a normal cold start, the second
  // means durable state was lost and the caller must not silently retrain
  // as if from scratch without surfacing it.
  int tried = 0;
  std::string newest_error;
  auto note = [&](const std::string& msg) {
    if (tried == 1) newest_error = msg;
  };
  for (const std::string& name : Candidates()) {
    const std::string path = dir_ + "/" + name;
    ++tried;
    if (fault::ShouldFailIO("io.checkpoint.load")) {
      GALIGN_LOG(Warning) << "Checkpoint " << path
                          << " unreadable (injected fault); trying previous";
      note("injected fault: checkpoint load from " + path);
      continue;
    }
    auto content = ReadFileToString(path);
    if (!content.ok()) {
      GALIGN_LOG(Warning) << "Checkpoint " << path << " unreadable ("
                          << content.status().message()
                          << "); trying previous";
      note(content.status().message());
      continue;
    }
    auto payload = StripAndVerifyCrc32Trailer(content.ValueOrDie(),
                                              /*require_trailer=*/true, path);
    if (!payload.ok()) {
      GALIGN_LOG(Warning) << "Checkpoint " << path << " failed validation ("
                          << payload.status().message()
                          << "); trying previous";
      note(payload.status().message());
      continue;
    }
    auto ckpt = ParseCheckpoint(payload.ValueOrDie(), path);
    if (!ckpt.ok()) {
      GALIGN_LOG(Warning) << "Checkpoint " << path << " corrupt ("
                          << ckpt.status().message() << "); trying previous";
      note(ckpt.status().message());
      continue;
    }
    // The resumed run depends on this file until its next successful save:
    // pin it so retention cannot prune it in the meantime.
    pinned_.store(EpochOfFileName(name));
    return ckpt;
  }
  if (tried > 0) {
    return Status::IOError("all " + std::to_string(tried) +
                           " checkpoint generations under " + dir_ +
                           " failed validation (newest error: " +
                           newest_error + ")");
  }
  return Status::NotFound("no checkpoint under " + dir_);
}

}  // namespace galign
