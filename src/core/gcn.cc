#include "core/gcn.h"

#include "common/logging.h"
#include "la/ops.h"

namespace galign {

MultiOrderGcn::MultiOrderGcn(int num_layers, int64_t input_dim,
                             int64_t embedding_dim, Rng* rng,
                             Activation activation)
    : MultiOrderGcn(std::vector<int64_t>(
                        static_cast<size_t>(num_layers > 0 ? num_layers : 1),
                        embedding_dim),
                    input_dim, rng, activation) {
  GALIGN_DCHECK(num_layers >= 1);
}

MultiOrderGcn::MultiOrderGcn(const std::vector<int64_t>& layer_dims,
                             int64_t input_dim, Rng* rng,
                             Activation activation)
    : input_dim_(input_dim),
      embedding_dim_(layer_dims.empty() ? 1 : layer_dims.back()),
      activation_(activation) {
  GALIGN_DCHECK(!layer_dims.empty() && input_dim >= 1);
  weights_.reserve(layer_dims.size());
  int64_t in = input_dim;
  for (int64_t dim : layer_dims) {
    GALIGN_DCHECK(dim >= 1);
    weights_.push_back(Matrix::Xavier(in, dim, rng));
    in = dim;
  }
}

std::vector<Var> MultiOrderGcn::MakeWeightLeaves(Tape* tape) const {
  std::vector<Var> vars;
  vars.reserve(weights_.size());
  for (const Matrix& w : weights_) {
    vars.push_back(tape->Leaf(w, /*requires_grad=*/true));
  }
  return vars;
}

std::vector<Var> MultiOrderGcn::Forward(Tape* tape,
                                        const SparseMatrix* laplacian,
                                        const Matrix& features,
                                        std::vector<Var>* weight_vars) const {
  std::vector<Var> wv = MakeWeightLeaves(tape);
  std::vector<Var> out = ForwardWithWeights(tape, laplacian, features, wv);
  if (weight_vars != nullptr) *weight_vars = std::move(wv);
  return out;
}

std::vector<Var> MultiOrderGcn::ForwardWithWeights(
    Tape* tape, const SparseMatrix* laplacian, const Matrix& features,
    const std::vector<Var>& weight_vars) const {
  GALIGN_DCHECK(weight_vars.size() == weights_.size());
  GALIGN_DCHECK(features.cols() == input_dim_);
  std::vector<Var> layers;
  layers.reserve(weights_.size() + 1);
  Var h = ag::NormalizeRows(tape, tape->Leaf(features, false));
  layers.push_back(h);
  for (size_t l = 0; l < weights_.size(); ++l) {
    Var agg = ag::SpMM(tape, laplacian, h);
    Var pre = ag::MatMul(tape, agg, weight_vars[l]);
    Var act;
    switch (activation_) {
      case Activation::kTanh:
        act = ag::Tanh(tape, pre);
        break;
      case Activation::kRelu:
        act = ag::Relu(tape, pre);
        break;
      case Activation::kLinear:
        act = pre;
        break;
    }
    h = ag::NormalizeRows(tape, act);
    layers.push_back(h);
  }
  return layers;
}

std::vector<Matrix> MultiOrderGcn::ForwardInference(
    const SparseMatrix& laplacian, const Matrix& features) const {
  GALIGN_DCHECK(features.cols() == input_dim_);
  std::vector<Matrix> layers;
  layers.reserve(weights_.size() + 1);
  {
    Matrix h = features;
    h.NormalizeRows();
    layers.push_back(std::move(h));
  }
  // `agg` is reused across layers (same n x d after layer one) and the
  // activation is applied in place, so each layer allocates only the matrix
  // that ends up stored in `layers`. The reserve above keeps row pointers
  // stable, so reading the previous layer by reference is safe.
  Matrix agg;
  for (const Matrix& w : weights_) {
    laplacian.MultiplyInto(layers.back(), &agg);
    Matrix pre;
    MatMulInto(agg, w, &pre);
    switch (activation_) {
      case Activation::kTanh:
        TanhInto(pre, &pre);
        break;
      case Activation::kRelu:
        for (int64_t i = 0; i < pre.size(); ++i) {
          pre.data()[i] = pre.data()[i] > 0.0 ? pre.data()[i] : 0.0;
        }
        break;
      case Activation::kLinear:
        break;
    }
    pre.NormalizeRows();
    layers.push_back(std::move(pre));
  }
  return layers;
}

}  // namespace galign
