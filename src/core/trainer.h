// Augmented learning for multi-order embedding (paper Alg. 1): trains one
// weight-shared GCN on the source network, the target network, and their
// augmented copies, optimizing J(G_s) + J(G_t) with Adam.
//
// Training is guarded by a numerical-health layer (DESIGN.md §7): every
// epoch the loss and the global gradient norm are checked before the Adam
// step is applied. On a detected divergence (non-finite loss/gradients/
// weights, or gradient norm above config.max_grad_norm) the trainer rolls
// the weights back to the best snapshot seen so far, resets the Adam
// moments, decays the learning rate, and retries — up to
// config.max_rollbacks times before giving up with a NotConverged status.
#pragma once

#include <limits>
#include <vector>

#include "autograd/adam.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/augmenter.h"
#include "core/config.h"
#include "core/gcn.h"
#include "graph/graph.h"

namespace galign {

/// \brief Health record of one training run, returned alongside the loss
/// history. Lets callers (and benchmark sweeps) distinguish "trained
/// cleanly", "recovered from a transient divergence", and "gave up".
struct TrainReport {
  int epochs_run = 0;      ///< forward/backward passes executed
  int steps_applied = 0;   ///< Adam steps that actually updated the weights
  int rollbacks = 0;       ///< divergence events that triggered a rollback
  std::vector<int> rollback_epochs;  ///< epoch index of each event
  double final_lr = 0.0;   ///< learning rate at exit (decayed per rollback)
  double final_loss = std::numeric_limits<double>::quiet_NaN();
  bool diverged = false;   ///< true when the rollback budget was exhausted

  // --- Crash safety (DESIGN.md §8) ---
  bool resumed = false;     ///< true when state came from a checkpoint
  int resume_epoch = 0;     ///< first epoch executed after the restore
  int checkpoints_written = 0;
  /// The run stopped early because its RunContext deadline passed / token
  /// fired; the weights hold the best-so-far (latest healthy) state.
  bool deadline_exceeded = false;
  bool cancelled = false;

  /// Training finished and at least one rollback was needed along the way.
  bool recovered() const { return rollbacks > 0 && !diverged; }
};

/// \brief Runs Alg. 1: builds augmentations once, then iterates full-batch
/// forward/backward/Adam steps over the shared weights.
class Trainer {
 public:
  explicit Trainer(GAlignConfig config) : config_(std::move(config)) {}

  /// Trains gcn's weights in place. Source and target must have the same
  /// attribute dimensionality (attribute consistency presumes comparable
  /// profiles, §II-C).
  [[nodiscard]] Status Train(MultiOrderGcn* gcn, const AttributedGraph& source,
               const AttributedGraph& target, Rng* rng) {
    return Train(gcn, source, target, rng, /*seeds=*/{});
  }

  /// Semi-supervised variant (extension): when config.seed_loss_weight > 0
  /// and seeds are non-empty, adds the cross-network anchor loss.
  [[nodiscard]] Status Train(MultiOrderGcn* gcn, const AttributedGraph& source,
               const AttributedGraph& target, Rng* rng,
               const std::vector<std::pair<int64_t, int64_t>>& seeds) {
    return Train(gcn, source, target, rng, seeds, RunContext());
  }

  /// Deadline/cancellation-aware variant: the epoch loop polls
  /// ctx.ShouldStop() and winds down with the best-so-far weights (the
  /// report marks deadline_exceeded/cancelled). With config.checkpoint_dir
  /// set, trainer state is durably checkpointed every
  /// config.checkpoint_every healthy epochs, and
  /// config.resume_from_checkpoint restarts bit-identical from the latest
  /// valid checkpoint (falling back past torn/corrupt files).
  [[nodiscard]] Status Train(MultiOrderGcn* gcn, const AttributedGraph& source,
               const AttributedGraph& target, Rng* rng,
               const std::vector<std::pair<int64_t, int64_t>>& seeds,
               const RunContext& ctx);

  /// Total loss J(G_s) + J(G_t) per healthy epoch, for convergence
  /// inspection. Epochs rejected by the health checks are not recorded.
  const std::vector<double>& loss_history() const { return loss_history_; }

  /// Health record of the most recent Train() call.
  const TrainReport& report() const { return report_; }

 private:
  GAlignConfig config_;
  std::vector<double> loss_history_;
  TrainReport report_;
};

}  // namespace galign
