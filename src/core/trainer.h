// Augmented learning for multi-order embedding (paper Alg. 1): trains one
// weight-shared GCN on the source network, the target network, and their
// augmented copies, optimizing J(G_s) + J(G_t) with Adam.
#pragma once

#include <vector>

#include "autograd/adam.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/augmenter.h"
#include "core/config.h"
#include "core/gcn.h"
#include "graph/graph.h"

namespace galign {

/// \brief Runs Alg. 1: builds augmentations once, then iterates full-batch
/// forward/backward/Adam steps over the shared weights.
class Trainer {
 public:
  explicit Trainer(GAlignConfig config) : config_(std::move(config)) {}

  /// Trains gcn's weights in place. Source and target must have the same
  /// attribute dimensionality (attribute consistency presumes comparable
  /// profiles, §II-C).
  Status Train(MultiOrderGcn* gcn, const AttributedGraph& source,
               const AttributedGraph& target, Rng* rng) {
    return Train(gcn, source, target, rng, /*seeds=*/{});
  }

  /// Semi-supervised variant (extension): when config.seed_loss_weight > 0
  /// and seeds are non-empty, adds the cross-network anchor loss.
  Status Train(MultiOrderGcn* gcn, const AttributedGraph& source,
               const AttributedGraph& target, Rng* rng,
               const std::vector<std::pair<int64_t, int64_t>>& seeds);

  /// Total loss J(G_s) + J(G_t) per epoch, for convergence inspection.
  const std::vector<double>& loss_history() const { return loss_history_; }

 private:
  GAlignConfig config_;
  std::vector<double> loss_history_;
};

}  // namespace galign
