#include "core/config.h"

#include <cstddef>

namespace galign {

std::vector<double> GAlignConfig::EffectiveLayerWeights() const {
  const std::size_t count = static_cast<size_t>(num_layers) + 1;
  std::vector<double> theta(count, 0.0);
  if (final_layer_only) {
    theta.back() = 1.0;
    return theta;
  }
  if (layer_weights.empty()) {
    for (double& t : theta) t = 1.0 / static_cast<double>(count);
    return theta;
  }
  double sum = 0.0;
  for (std::size_t l = 0; l < count && l < layer_weights.size(); ++l) {
    theta[l] = layer_weights[l] < 0.0 ? 0.0 : layer_weights[l];
    sum += theta[l];
  }
  if (sum <= 0.0) {
    for (double& t : theta) t = 1.0 / static_cast<double>(count);
    return theta;
  }
  for (double& t : theta) t /= sum;
  return theta;
}

Status GAlignConfig::Validate() const {
  if (num_layers < 1) {
    return Status::InvalidArgument("num_layers must be >= 1");
  }
  if (embedding_dim < 1) {
    return Status::InvalidArgument("embedding_dim must be >= 1");
  }
  if (epochs < 1) return Status::InvalidArgument("epochs must be >= 1");
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (gamma < 0.0 || gamma > 1.0) {
    return Status::InvalidArgument("gamma must be in [0, 1]");
  }
  if (num_augmentations < 0) {
    return Status::InvalidArgument("num_augmentations must be >= 0");
  }
  if (augment_structural_noise < 0.0 || augment_structural_noise > 1.0) {
    return Status::InvalidArgument(
        "augment_structural_noise must be in [0, 1]");
  }
  if (augment_attribute_noise < 0.0 || augment_attribute_noise > 1.0) {
    return Status::InvalidArgument(
        "augment_attribute_noise must be in [0, 1]");
  }
  if (adaptivity_threshold <= 0.0) {
    return Status::InvalidArgument("adaptivity_threshold must be positive");
  }
  if (refinement_iterations < 0) {
    return Status::InvalidArgument("refinement_iterations must be >= 0");
  }
  if (accumulation_factor <= 1.0) {
    return Status::InvalidArgument(
        "accumulation_factor (beta) must be > 1 (Eq. 14)");
  }
  if (stability_threshold <= 0.0 || stability_threshold >= 1.0) {
    return Status::InvalidArgument(
        "stability_threshold (lambda) must be in (0, 1)");
  }
  if (!layer_weights.empty() &&
      layer_weights.size() != static_cast<size_t>(num_layers) + 1) {
    return Status::InvalidArgument(
        "layer_weights must be empty or have num_layers + 1 entries");
  }
  if (seed_loss_weight < 0.0) {
    return Status::InvalidArgument("seed_loss_weight must be >= 0");
  }
  if (early_stop_patience < 0) {
    return Status::InvalidArgument("early_stop_patience must be >= 0");
  }
  if (max_grad_norm < 0.0) {
    return Status::InvalidArgument("max_grad_norm must be >= 0 (0 disables)");
  }
  if (max_rollbacks < 0) {
    return Status::InvalidArgument("max_rollbacks must be >= 0");
  }
  if (rollback_lr_decay <= 0.0 || rollback_lr_decay >= 1.0) {
    return Status::InvalidArgument("rollback_lr_decay must be in (0, 1)");
  }
  if (refinement_tolerance < 0.0) {
    return Status::InvalidArgument("refinement_tolerance must be >= 0");
  }
  if (checkpoint_every < 1) {
    return Status::InvalidArgument("checkpoint_every must be >= 1");
  }
  if (resume_from_checkpoint && checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "resume_from_checkpoint requires a checkpoint_dir");
  }
  return Status::OK();
}

}  // namespace galign
