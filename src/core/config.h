// GAlign hyper-parameters with the paper's defaults (§VII-A
// "Hyperparameter tuning"). Ablation variants (Table IV) are expressed as
// flags here so the same code path serves GAlign-1/2/3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace galign {

/// Configuration of the full GAlign pipeline.
struct GAlignConfig {
  // --- Multi-order GCN (§V-A) ---
  int num_layers = 2;           ///< k, number of GCN layers
  int64_t embedding_dim = 200;  ///< d^(l) for every layer l >= 1

  // --- Training (Alg. 1) ---
  int epochs = 30;
  double learning_rate = 0.01;
  uint64_t seed = 42;
  /// Early stopping: stop when the loss has not improved by at least
  /// `early_stop_tolerance` (relative) for this many consecutive epochs.
  /// 0 disables early stopping (paper setting: fixed epoch budget).
  int early_stop_patience = 0;
  double early_stop_tolerance = 1e-4;

  // --- Numerical health & divergence recovery (DESIGN.md §7) ---
  /// Global gradient-norm explosion threshold. A step whose all-parameter
  /// gradient L2 norm exceeds this (or is non-finite) is rejected and
  /// triggers a rollback. 0 disables the norm check (finiteness is always
  /// enforced).
  double max_grad_norm = 1e8;
  /// Bounded retries: rollbacks allowed before training gives up with a
  /// NotConverged status. 0 restores the old fail-fast behaviour.
  int max_rollbacks = 3;
  /// Learning-rate decay applied on every rollback (in (0, 1)).
  double rollback_lr_decay = 0.5;

  // --- Loss (Eq. 10) ---
  double gamma = 0.8;  ///< balance between consistency and adaptivity loss

  // --- Data augmentation (§V-C) ---
  /// Augmented copies per input network. Copy 2i carries structural noise,
  /// copy 2i+1 attribute noise, mirroring the two violation types.
  int num_augmentations = 2;
  double augment_structural_noise = 0.10;  ///< p_s
  double augment_attribute_noise = 0.10;   ///< p_a
  /// sigma_< threshold of the adaptivity loss (Eq. 9): row distances beyond
  /// this are treated as destroyed neighbourhoods and masked out.
  double adaptivity_threshold = 1.0;

  // --- Alignment instantiation (§VI-A) ---
  /// theta^(l) for l = 0..k; empty = uniform 1/(k+1) (paper default).
  std::vector<double> layer_weights;

  // --- Refinement (§VI-B, Alg. 2) ---
  int refinement_iterations = 20;
  double stability_threshold = 0.94;  ///< lambda
  double accumulation_factor = 1.1;   ///< beta (> 1)
  /// Residual tolerance of the refinement loop: stop once the relative
  /// improvement of g(S) over the previous iterate falls below this. 0 runs
  /// the full iteration budget (paper behaviour).
  double refinement_tolerance = 0.0;

  // --- Ablation switches (Table IV) ---
  bool use_augmentation = true;   ///< false => GAlign-1
  bool use_refinement = true;     ///< false => GAlign-2
  bool final_layer_only = false;  ///< true  => GAlign-3

  // --- Crash safety (DESIGN.md §8) ---
  /// Directory for durable trainer checkpoints. Empty (default) disables
  /// checkpointing entirely — the paper pipeline has zero IO in its loop.
  std::string checkpoint_dir;
  /// Snapshot cadence: a checkpoint is written after every N healthy
  /// epochs (and after the final one). Only meaningful with a non-empty
  /// checkpoint_dir.
  int checkpoint_every = 5;
  /// When true and checkpoint_dir holds a valid checkpoint, Train() resumes
  /// from it (bit-identical to the uninterrupted run) instead of starting
  /// from epoch 0. Torn/corrupt checkpoints are skipped in favour of the
  /// previous one.
  bool resume_from_checkpoint = false;

  // --- Semi-supervised extension (beyond the paper) ---
  /// When seed anchors are supplied AND this weight is > 0, training adds
  /// mu * sum_l sum_(v,v') in seeds ||H_s^(l)(v) - H_t^(l)(v')|| to the
  /// objective, pulling known anchor pairs together in the shared space.
  /// The paper's fully unsupervised model corresponds to mu = 0 (default).
  double seed_loss_weight = 0.0;

  /// Effective theta vector: the configured weights (padded/truncated to
  /// k+1 and renormalized), uniform weights, or the one-hot final layer for
  /// GAlign-3.
  std::vector<double> EffectiveLayerWeights() const;

  /// Checks every field for validity (positive dimensions, probabilities in
  /// range, beta > 1, ...) and returns a descriptive error otherwise.
  /// GAlignAligner::Align validates automatically.
  [[nodiscard]] Status Validate() const;
};

}  // namespace galign
