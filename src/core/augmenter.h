// Perturbation-based network augmentation (paper §V-C): each augmented copy
// is a randomly permuted version of the input with structural or attribute
// noise injected. The recorded correspondence (original node -> augmented
// node) feeds the adaptivity loss (Eq. 9).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/config.h"
#include "graph/graph.h"
#include "la/sparse.h"

namespace galign {

/// One augmented copy of a network, ready for GCN forwarding.
struct AugmentedNetwork {
  AttributedGraph graph;
  /// correspondence[v] = id of original node v inside the augmented copy.
  std::vector<int64_t> correspondence;
  /// Pre-computed propagation matrix C of the copy.
  SparseMatrix laplacian;
};

/// \brief Builds cfg.num_augmentations copies of g.
///
/// Even-indexed copies carry structural noise (edge add/remove with
/// probability p_s), odd-indexed copies carry attribute noise (p_a) — the
/// two violation types the model must adapt to (R2).
[[nodiscard]] Result<std::vector<AugmentedNetwork>> MakeAugmentations(
    const AttributedGraph& g, const GAlignConfig& cfg, Rng* rng);

}  // namespace galign
