// Public entry point of the GAlign framework: an Aligner that runs the full
// unsupervised pipeline — multi-order GCN training with augmentation
// (Alg. 1) followed by alignment instantiation and stability refinement
// (Alg. 2). The ablation variants of Table IV are configuration presets.
#pragma once

#include <memory>
#include <string>

#include "align/alignment.h"
#include "core/config.h"
#include "core/gcn.h"
#include "core/trainer.h"

namespace galign {

/// \brief GAlign: adaptive, fully unsupervised network alignment.
///
/// Usage:
///   GAlignAligner aligner(GAlignConfig{});
///   auto s = aligner.Align(source, target, /*supervision=*/{});
///
/// Supervision is accepted for interface compatibility and ignored — the
/// method is unsupervised (R3).
class GAlignAligner : public Aligner {
 public:
  explicit GAlignAligner(GAlignConfig config = {},
                         std::string name = "GAlign")
      : config_(std::move(config)), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

  /// Training working set (augmented views, activations, optimizer state)
  /// plus the refinement scan chunks and the final dense aggregation.
  uint64_t EstimatePeakBytes(int64_t n_source, int64_t n_target,
                             int64_t dims) const override;

  /// Budget-degraded run (DESIGN.md §9): trains and refines exactly as
  /// Align() — ScanStability is already row-chunked — then ranks the
  /// refined embeddings through ChunkedEmbeddingTopK instead of
  /// materializing the n1 x n2 aggregation.
  [[nodiscard]] Result<TopKAlignment> AlignTopK(const AttributedGraph& source,
                                  const AttributedGraph& target,
                                  const Supervision& supervision,
                                  const RunContext& ctx, int64_t k) override;

  const GAlignConfig& config() const { return config_; }

  /// Per-epoch training loss of the most recent Align() call.
  const std::vector<double>& last_loss_history() const {
    return last_loss_history_;
  }
  /// Refinement g(S) trajectory of the most recent Align() call (empty when
  /// refinement is disabled).
  const std::vector<double>& last_refinement_scores() const {
    return last_refinement_scores_;
  }
  /// Numerical-health record of the most recent Align() training run
  /// (epochs, rollbacks, final loss/lr — see TrainReport).
  const TrainReport& last_train_report() const { return last_train_report_; }

  /// Ablation presets (Table IV).
  static GAlignConfig WithoutAugmentation(GAlignConfig base = {});  // GAlign-1
  static GAlignConfig WithoutRefinement(GAlignConfig base = {});    // GAlign-2
  static GAlignConfig FinalLayerOnly(GAlignConfig base = {});       // GAlign-3

 private:
  /// Peak bytes of the training + refinement phases alone (everything the
  /// chunked AlignTopK path keeps from EstimatePeakBytes).
  uint64_t EstimateTrainBytes(int64_t n_source, int64_t n_target,
                              int64_t dims) const;

  GAlignConfig config_;
  std::string name_;
  std::vector<double> last_loss_history_;
  std::vector<double> last_refinement_scores_;
  TrainReport last_train_report_;
};

/// \brief Trained multi-order embeddings of a network pair.
///
/// The per-layer matrices are the GCN outputs H^(0)..H^(k) (row-normalized);
/// `*_concat` concatenates all layers row-wise into one feature matrix —
/// ready-made node features for downstream tasks (node classification, link
/// prediction) in the shared embedding space.
struct MultiOrderEmbeddings {
  std::vector<Matrix> source_layers;
  std::vector<Matrix> target_layers;
  Matrix source_concat;
  Matrix target_concat;
};

/// Runs Alg. 1 (training only) and returns the learnt multi-order
/// embeddings of both networks, without computing an alignment matrix.
[[nodiscard]] Result<MultiOrderEmbeddings> EmbedNetworks(const GAlignConfig& config,
                                           const AttributedGraph& source,
                                           const AttributedGraph& target);

}  // namespace galign
