#include "core/augmenter.h"

#include "graph/noise.h"

namespace galign {

Result<std::vector<AugmentedNetwork>> MakeAugmentations(
    const AttributedGraph& g, const GAlignConfig& cfg, Rng* rng) {
  std::vector<AugmentedNetwork> out;
  out.reserve(cfg.num_augmentations);
  for (int i = 0; i < cfg.num_augmentations; ++i) {
    NoisyCopyOptions opts;
    if (i % 2 == 0) {
      opts.structural_noise = cfg.augment_structural_noise;
    } else {
      opts.attribute_noise = cfg.augment_attribute_noise;
    }
    opts.permute = true;
    auto pair = MakeNoisyCopyPair(g, opts, rng);
    if (!pair.ok()) return pair.status();
    AugmentedNetwork aug;
    aug.graph = std::move(pair.ValueOrDie().target);
    aug.correspondence = std::move(pair.ValueOrDie().ground_truth);
    auto lap = aug.graph.NormalizedAdjacency();
    if (!lap.ok()) return lap.status();
    aug.laplacian = lap.MoveValueOrDie();
    out.push_back(std::move(aug));
  }
  return out;
}

}  // namespace galign
