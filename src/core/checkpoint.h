// Durable trainer checkpoints (DESIGN.md §8).
//
// A TrainerCheckpoint captures everything Trainer::Train needs to restart
// bit-identical mid-run: GCN weights, Adam moments and step counter, the
// learning rate (post any rollback decay), the divergence-recovery snapshot,
// early-stopping counters, the loss history, the TrainReport so far, and the
// serialized RNG engine state. All floating-point state is stored as raw
// IEEE-754 bit patterns (hex), so a resumed run reproduces the uninterrupted
// run exactly — not merely to within printing precision.
//
// CheckpointManager persists checkpoints through common/durable_io: each
// file is CRC32-stamped and atomically renamed into place, and a versioned
// MANIFEST (newest first) is rewritten the same way. LoadLatest() walks the
// manifest newest-to-oldest and transparently skips torn or corrupt files,
// so a crash mid-save costs at most one checkpoint interval of work.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// \brief Full mid-training state of one Trainer::Train run.
struct TrainerCheckpoint {
  /// First epoch the resumed loop should execute (one past the last epoch
  /// folded into this state).
  int epoch = 0;

  // Optimizer state.
  double lr = 0.0;
  int64_t adam_step = 0;
  std::vector<Matrix> weights;
  std::vector<Matrix> adam_m;
  std::vector<Matrix> adam_v;

  // Divergence-recovery snapshot (DESIGN.md §7).
  std::vector<Matrix> snapshot;
  double snapshot_loss = 0.0;

  // Early-stopping state.
  double best_loss = 0.0;
  int epochs_without_improvement = 0;

  std::vector<double> loss_history;

  // TrainReport so far (mirrors core/trainer.h fields).
  int epochs_run = 0;
  int steps_applied = 0;
  int rollbacks = 0;
  std::vector<int> rollback_epochs;
  double final_lr = 0.0;
  double final_loss = 0.0;

  /// mt19937_64 state of the caller's Rng, captured via operator<<. Unused
  /// by the paper's training loop (which draws no randomness after the
  /// prelude) but persisted so future stochastic epochs stay resumable.
  std::string rng_state;
};

/// \brief Serializes a checkpoint to its versioned text payload (without
/// the CRC trailer; CheckpointManager adds it on save).
std::string SerializeCheckpoint(const TrainerCheckpoint& ckpt);

/// \brief Parses a checkpoint payload (trailer already stripped). `context`
/// names the source in error messages.
[[nodiscard]] Result<TrainerCheckpoint> ParseCheckpoint(const std::string& payload,
                                          const std::string& context);

/// \brief Writes/reads checkpoints under one directory.
///
/// Filenames are ckpt_<epoch, zero-padded>. Save() is atomic per-file and
/// applies the shared generation-retention policy (DESIGN.md §13): the
/// `keep` newest CRC-valid checkpoints plus the pinned (last-resumed)
/// epoch survive, torn files are garbage-collected once a valid survivor
/// exists, and the MANIFEST lists survivors newest-first — so long
/// training runs stop growing disk unboundedly. Save failures are surfaced
/// as Status but are safe to treat as non-fatal: an existing older
/// checkpoint is never damaged by a failed newer save.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir, int keep = 2);

  /// Durably writes `ckpt` and updates the manifest.
  [[nodiscard]] Status Save(const TrainerCheckpoint& ckpt);

  /// Loads the newest valid checkpoint, falling back past torn/corrupt
  /// files (each skip is logged). Typed terminal failures: NotFound when
  /// the directory holds no checkpoint at all (a normal cold start),
  /// IOError naming the generation count and the newest failure when every
  /// present generation failed validation (durable state was lost). The
  /// returned epoch is pinned so retention never prunes the checkpoint a
  /// resumed run depends on.
  [[nodiscard]] Result<TrainerCheckpoint> LoadLatest() const;

  /// Last-resumed pinning: epoch `epoch` survives retention regardless of
  /// age. LoadLatest() sets this automatically.
  void SetPinnedEpoch(int epoch) { pinned_.store(epoch); }
  int pinned_epoch() const { return pinned_.load(); }

  const std::string& dir() const { return dir_; }

 private:
  std::string ManifestPath() const;
  /// Candidate filenames newest-first: manifest order when the manifest is
  /// readable and intact, directory scan otherwise.
  std::vector<std::string> Candidates() const;

  std::string dir_;
  int keep_;
  /// Epoch of the last checkpoint handed to a caller; -1 until then.
  mutable std::atomic<int> pinned_{-1};
};

}  // namespace galign
