// The multi-order GCN embedding model (paper §IV-A, §V-A): k layers of
//   H^(l) = normalize( tanh( C H^(l-1) W^(l) ) ),   H^(0) = normalize(F)
// with C = D̂^{-1/2} Â D̂^{-1/2}. tanh is used instead of ReLU because the
// alignment task needs a sign-preserving (bijective) activation (§IV-A).
// The weights W are shared by every network passed through the model — the
// weight-sharing mechanism that puts all embeddings in one space (§V-D).
#pragma once

#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "common/rng.h"
#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace galign {

/// Which activation the GCN applies (kTanh is the paper's choice; kRelu is
/// kept for the activation ablation bench).
enum class Activation { kTanh, kRelu, kLinear };

/// \brief k-layer GCN with externally owned, shared weights.
class MultiOrderGcn {
 public:
  /// Initializes Xavier weights: W^(1) is input_dim x embedding_dim, deeper
  /// layers embedding_dim x embedding_dim.
  MultiOrderGcn(int num_layers, int64_t input_dim, int64_t embedding_dim,
                Rng* rng, Activation activation = Activation::kTanh);

  /// Per-layer dimension variant (paper Table I: d^(l) may differ by
  /// layer): layer_dims[l] is the output width of layer l+1. Must be
  /// non-empty; embedding_dim() reports the last layer's width.
  MultiOrderGcn(const std::vector<int64_t>& layer_dims, int64_t input_dim,
                Rng* rng, Activation activation = Activation::kTanh);

  int num_layers() const { return static_cast<int>(weights_.size()); }
  int64_t input_dim() const { return input_dim_; }
  int64_t embedding_dim() const { return embedding_dim_; }
  Activation activation() const { return activation_; }

  std::vector<Matrix>& weights() { return weights_; }
  const std::vector<Matrix>& weights() const { return weights_; }

  /// \brief Differentiable forward pass on a tape.
  ///
  /// Returns k+1 vars: the normalized input H^(0) plus one per layer. The
  /// weight leaves used are returned through `weight_vars` so the caller can
  /// read their gradients after Backward(); pass the same weight leaves when
  /// forwarding several graphs on one tape to share weights.
  std::vector<Var> Forward(Tape* tape, const SparseMatrix* laplacian,
                           const Matrix& features,
                           std::vector<Var>* weight_vars) const;

  /// Creates the weight leaves (requires_grad) on `tape` once; feed these to
  /// Forward() for every graph in the same step.
  std::vector<Var> MakeWeightLeaves(Tape* tape) const;

  /// Same forward with the given pre-made weight leaves.
  std::vector<Var> ForwardWithWeights(Tape* tape,
                                      const SparseMatrix* laplacian,
                                      const Matrix& features,
                                      const std::vector<Var>& weight_vars) const;

  /// \brief Inference-only forward pass (no tape, no gradients).
  ///
  /// Used by alignment instantiation and by every refinement iteration
  /// (which re-runs the pass under updated influence factors, Eq. 15).
  std::vector<Matrix> ForwardInference(const SparseMatrix& laplacian,
                                       const Matrix& features) const;

 private:
  int64_t input_dim_;
  int64_t embedding_dim_;
  Activation activation_;
  std::vector<Matrix> weights_;
};

}  // namespace galign
