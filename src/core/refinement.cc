#include "core/refinement.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "graph/ann/ann.h"
#include "la/ops.h"

namespace galign {

Matrix AggregateAlignment(const std::vector<Matrix>& hs,
                          const std::vector<Matrix>& ht,
                          const std::vector<double>& theta) {
  GALIGN_DCHECK(hs.size() == ht.size());
  GALIGN_DCHECK(hs.size() == theta.size());
  const int64_t n1 = hs[0].rows();
  const int64_t n2 = ht[0].rows();
  Matrix s(n1, n2);
  for (size_t l = 0; l < hs.size(); ++l) {
    if (theta[l] == 0.0) continue;
    s.Axpy(theta[l], MatMulTransposedB(hs[l], ht[l]));
  }
  return s;
}

StabilityScan ScanStability(const std::vector<Matrix>& hs,
                            const std::vector<Matrix>& ht,
                            const std::vector<double>& theta, double lambda) {
  GALIGN_DCHECK(hs.size() == ht.size() && hs.size() == theta.size());
  const size_t layers = hs.size();
  const int64_t n1 = hs[0].rows();
  const int64_t n2 = ht[0].rows();

  // Per-layer row statistics and per-layer column statistics.
  std::vector<std::vector<int64_t>> row_arg(layers,
                                            std::vector<int64_t>(n1, -1));
  std::vector<std::vector<double>> row_max(
      layers, std::vector<double>(n1, -1e300));
  std::vector<std::vector<int64_t>> col_arg(layers,
                                            std::vector<int64_t>(n2, -1));
  std::vector<std::vector<double>> col_max(
      layers, std::vector<double>(n2, -1e300));
  std::vector<double> agg_row_max(n1, -1e300);

  const int64_t chunk = std::max<int64_t>(1, std::min<int64_t>(n1, 512));
  // Column maxima are shared across chunks; guard them by processing chunks
  // serially while parallelizing the inner GEMMs (MatMulTransposedB already
  // fans out across the pool).
  for (int64_t r0 = 0; r0 < n1; r0 += chunk) {
    const int64_t r1 = std::min(n1, r0 + chunk);
    const int64_t rows = r1 - r0;
    Matrix agg(rows, n2);
    for (size_t l = 0; l < layers; ++l) {
      Matrix block = MatMulTransposedB(hs[l].Block(r0, 0, rows, hs[l].cols()),
                                       ht[l]);
      for (int64_t i = 0; i < rows; ++i) {
        const double* p = block.row_data(i);
        const int64_t v = r0 + i;
        for (int64_t j = 0; j < n2; ++j) {
          if (p[j] > row_max[l][v]) {
            row_max[l][v] = p[j];
            row_arg[l][v] = j;
          }
          if (p[j] > col_max[l][j]) {
            col_max[l][j] = p[j];
            col_arg[l][j] = v;
          }
        }
      }
      if (theta[l] != 0.0) agg.Axpy(theta[l], block);
    }
    for (int64_t i = 0; i < rows; ++i) {
      agg_row_max[r0 + i] = MaxRow(agg, i);
    }
  }

  // Stability (Eq. 13) is evaluated over the GCN layers l >= 1. The raw
  // attribute layer H^(0) is excluded from the argmax-consistency check:
  // with low-dimensional categorical attributes many nodes share identical
  // attribute rows, making the layer-0 argmax a tie-break lottery that
  // would mark every node unstable.
  const size_t first = layers > 1 ? 1 : 0;
  StabilityScan out;
  for (int64_t v = 0; v < n1; ++v) {
    bool stable = true;
    for (size_t l = first; l < layers && stable; ++l) {
      stable = row_arg[l][v] == row_arg[first][v] && row_max[l][v] > lambda;
    }
    if (stable) out.stable_source.push_back(v);
  }
  for (int64_t u = 0; u < n2; ++u) {
    bool stable = true;
    for (size_t l = first; l < layers && stable; ++l) {
      stable = col_arg[l][u] == col_arg[first][u] && col_max[l][u] > lambda;
    }
    if (stable) out.stable_target.push_back(u);
  }
  for (int64_t v = 0; v < n1; ++v) out.aggregate_score += agg_row_max[v];
  return out;
}

Result<StabilityScan> ScanStabilityCandidates(const std::vector<Matrix>& hs,
                                              const std::vector<Matrix>& ht,
                                              const std::vector<double>& theta,
                                              double lambda,
                                              const AnnPolicy& policy,
                                              const RunContext& ctx) {
  GALIGN_DCHECK(hs.size() == ht.size() && hs.size() == theta.size());
  const size_t layers = hs.size();
  const int64_t n1 = hs[0].rows();
  const int64_t n2 = ht[0].rows();
  const int64_t kc =
      std::max<int64_t>(1, std::min(policy.refine_candidates, n2));

  auto cand = AnnEmbeddingTopK(hs, ht, theta, kc, policy, ctx);
  GALIGN_RETURN_NOT_OK(cand.status());
  const TopKAlignment& topk = cand.ValueOrDie();

  std::vector<std::vector<int64_t>> row_arg(layers,
                                            std::vector<int64_t>(n1, -1));
  std::vector<std::vector<double>> row_max(
      layers, std::vector<double>(n1, -1e300));
  std::vector<std::vector<int64_t>> col_arg(layers,
                                            std::vector<int64_t>(n2, -1));
  std::vector<std::vector<double>> col_max(
      layers, std::vector<double>(n2, -1e300));

  StabilityScan out;
  std::vector<int64_t> cands;
  cands.reserve(static_cast<size_t>(topk.k));
  for (int64_t v = 0; v < topk.rows_computed; ++v) {
    cands.clear();
    for (int64_t j = 0; j < topk.k; ++j) {
      const int64_t u = topk.index[v * topk.k + j];
      if (u >= 0) cands.push_back(u);
    }
    // Ascending ids so the strict `>` updates below break ties exactly
    // like the exact scan (first maximum wins).
    std::sort(cands.begin(), cands.end());
    double agg_max = -1e300;
    bool any = false;
    for (const int64_t u : cands) {
      double agg = 0.0;
      for (size_t l = 0; l < layers; ++l) {
        double s = 0.0;
        const double* a = hs[l].row_data(v);
        const double* b = ht[l].row_data(u);
        for (int64_t c = 0; c < hs[l].cols(); ++c) s += a[c] * b[c];
        if (s > row_max[l][v]) {
          row_max[l][v] = s;
          row_arg[l][v] = u;
        }
        if (s > col_max[l][u]) {
          col_max[l][u] = s;
          col_arg[l][u] = v;
        }
        if (theta[l] != 0.0) agg += theta[l] * s;
      }
      if (agg > agg_max) agg_max = agg;
      any = true;
    }
    if (any) out.aggregate_score += agg_max;
  }

  const size_t first = layers > 1 ? 1 : 0;
  for (int64_t v = 0; v < n1; ++v) {
    if (row_arg[first][v] < 0) continue;  // no candidates retrieved
    bool stable = true;
    for (size_t l = first; l < layers && stable; ++l) {
      stable = row_arg[l][v] == row_arg[first][v] && row_max[l][v] > lambda;
    }
    if (stable) out.stable_source.push_back(v);
  }
  for (int64_t u = 0; u < n2; ++u) {
    if (col_arg[first][u] < 0) continue;  // never retrieved as a candidate
    bool stable = true;
    for (size_t l = first; l < layers && stable; ++l) {
      stable = col_arg[l][u] == col_arg[first][u] && col_max[l][u] > lambda;
    }
    if (stable) out.stable_target.push_back(u);
  }
  return out;
}

Result<RefinementResult> RefineAlignment(const MultiOrderGcn& gcn,
                                         const AttributedGraph& source,
                                         const AttributedGraph& target,
                                         const GAlignConfig& config,
                                         const RunContext& ctx,
                                         bool materialize,
                                         const AnnPolicy* ann) {
  const std::vector<double> theta = config.EffectiveLayerWeights();
  if (theta.size() != gcn.weights().size() + 1) {
    return Status::InvalidArgument("layer weights do not match GCN depth");
  }
  // Candidate-pair scan when the policy admits the problem size; the exact
  // chunked pass otherwise (and as the fallback when an iteration's index
  // cannot be built, e.g. under a tight memory budget).
  auto scan_stability = [&](const std::vector<Matrix>& s_layers,
                            const std::vector<Matrix>& t_layers) {
    if (ann != nullptr &&
        ShouldUseAnn(*ann, s_layers[0].rows(), t_layers[0].rows())) {
      auto approx =
          ScanStabilityCandidates(s_layers, t_layers, theta,
                                  config.stability_threshold, *ann, ctx);
      if (approx.ok()) return approx.MoveValueOrDie();
    }
    return ScanStability(s_layers, t_layers, theta,
                         config.stability_threshold);
  };

  std::vector<double> alpha_s(source.num_nodes(), 1.0);
  std::vector<double> alpha_t(target.num_nodes(), 1.0);

  // The paper's AGG_w weights node t by alpha(t) * deg(t)^{-1/2}. Written
  // as D_q = D̂ Q (Eq. 15) that requires Q(v, v) = alpha(v)^{-2}: the
  // propagation entry becomes (deg alpha^{-2})^{-1/2} = alpha * g. (Taking
  // Q = diag(alpha) literally would dampen stable nodes instead of
  // amplifying them.)
  auto influence_to_q = [](const std::vector<double>& alpha) {
    std::vector<double> q(alpha.size());
    for (size_t i = 0; i < alpha.size(); ++i) q[i] = 1.0 / (alpha[i] * alpha[i]);
    return q;
  };

  auto embed = [&](const std::vector<double>& as,
                   const std::vector<double>& at,
                   std::vector<Matrix>* hs,
                   std::vector<Matrix>* ht) -> Status {
    auto ls = source.NormalizedAdjacency(influence_to_q(as));
    GALIGN_RETURN_NOT_OK(ls.status());
    auto lt = target.NormalizedAdjacency(influence_to_q(at));
    GALIGN_RETURN_NOT_OK(lt.status());
    *hs = gcn.ForwardInference(ls.ValueOrDie(), source.attributes());
    *ht = gcn.ForwardInference(lt.ValueOrDie(), target.attributes());
    return Status::OK();
  };

  std::vector<Matrix> hs, ht;
  GALIGN_RETURN_NOT_OK(embed(alpha_s, alpha_t, &hs, &ht));

  RefinementResult result;
  StabilityScan scan = scan_stability(hs, ht);
  result.best_score = scan.aggregate_score;
  result.best_iteration = 0;
  result.score_history.push_back(scan.aggregate_score);
  std::vector<Matrix> best_hs = hs, best_ht = ht;

  result.report.converged = config.refinement_tolerance <= 0.0;
  for (int iter = 1; iter <= config.refinement_iterations; ++iter) {
    if (ctx.ShouldStop()) {
      // Deadline/cancellation: the best iterate so far is already tracked
      // in best_hs/best_ht — degrade to it rather than erroring out.
      result.report.degraded = true;
      result.report.converged = false;
      break;
    }
    // Eq. 14: amplify the influence of the nodes found stable.
    for (int64_t v : scan.stable_source) {
      alpha_s[v] *= config.accumulation_factor;
    }
    for (int64_t u : scan.stable_target) {
      alpha_t[u] *= config.accumulation_factor;
    }
    // Eq. 15: re-embed under the influence-scaled propagation matrix.
    GALIGN_RETURN_NOT_OK(embed(alpha_s, alpha_t, &hs, &ht));
    // Influence factors compound geometrically (beta^iter); on large stable
    // sets the propagation entries can overflow. Detect it here and fall
    // back to the best finite iterate instead of emitting NaN embeddings.
    bool finite = true;
    for (const Matrix& h : hs) finite &= h.AllFinite();
    for (const Matrix& h : ht) finite &= h.AllFinite();
    if (!finite) {
      result.report.degraded = true;
      result.report.converged = false;
      GALIGN_LOG(Warning)
          << "RefineAlignment: non-finite embeddings at iteration " << iter
          << " (influence overflow); degrading to best iterate "
          << result.best_iteration;
      break;
    }
    scan = scan_stability(hs, ht);
    result.score_history.push_back(scan.aggregate_score);
    const double prev = result.score_history[result.score_history.size() - 2];
    const double improvement =
        std::fabs(scan.aggregate_score - prev) /
        std::max(1.0, std::fabs(prev));
    result.report.iterations = iter;
    result.report.residual = improvement;
    if (scan.aggregate_score > result.best_score) {
      result.best_score = scan.aggregate_score;
      result.best_iteration = iter;
      best_hs = hs;
      best_ht = ht;
    }
    if (config.refinement_tolerance > 0.0 &&
        improvement < config.refinement_tolerance) {
      result.report.converged = true;
      break;
    }
  }

  if (materialize) {
    result.alignment = AggregateAlignment(best_hs, best_ht, theta);
  }
  result.source_embeddings = std::move(best_hs);
  result.target_embeddings = std::move(best_ht);
  return result;
}

}  // namespace galign
