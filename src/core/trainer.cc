#include "core/trainer.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/fault.h"
#include "common/logging.h"
#include "core/checkpoint.h"
#include "core/losses.h"

namespace galign {

namespace {

// True when the checkpointed shapes can be poured back into the live model
// (same layer count, same per-layer shapes for weights and both moments).
bool CheckpointMatchesModel(const TrainerCheckpoint& ckpt,
                            const std::vector<Matrix*>& params) {
  if (ckpt.weights.size() != params.size() ||
      ckpt.snapshot.size() != params.size() ||
      ckpt.adam_m.size() != params.size() ||
      ckpt.adam_v.size() != params.size()) {
    return false;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!ckpt.weights[i].SameShape(*params[i]) ||
        !ckpt.snapshot[i].SameShape(*params[i]) ||
        !ckpt.adam_m[i].SameShape(*params[i]) ||
        !ckpt.adam_v[i].SameShape(*params[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status Trainer::Train(MultiOrderGcn* gcn, const AttributedGraph& source,
                      const AttributedGraph& target, Rng* rng,
                      const std::vector<std::pair<int64_t, int64_t>>& seeds,
                      const RunContext& ctx) {
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument(
        "source/target attribute dimensions differ (" +
        std::to_string(source.num_attributes()) + " vs " +
        std::to_string(target.num_attributes()) + ")");
  }
  if (gcn->input_dim() != source.num_attributes()) {
    return Status::InvalidArgument("GCN input dim != attribute dim");
  }
  for (const auto& [v, u] : seeds) {
    if (v < 0 || v >= source.num_nodes() || u < 0 || u >= target.num_nodes()) {
      return Status::InvalidArgument("seed anchor out of range");
    }
  }

  auto lap_s_result = source.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_s_result.status());
  auto lap_t_result = target.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_t_result.status());
  const SparseMatrix lap_s = lap_s_result.MoveValueOrDie();
  const SparseMatrix lap_t = lap_t_result.MoveValueOrDie();

  // Alg. 1 lines 4-5: augmented copies are built once up front.
  std::vector<AugmentedNetwork> aug_s, aug_t;
  if (config_.use_augmentation && config_.num_augmentations > 0) {
    auto rs = MakeAugmentations(source, config_, rng);
    GALIGN_RETURN_NOT_OK(rs.status());
    aug_s = rs.MoveValueOrDie();
    auto rt = MakeAugmentations(target, config_, rng);
    GALIGN_RETURN_NOT_OK(rt.status());
    aug_t = rt.MoveValueOrDie();
  }

  AdamOptimizer adam({.lr = config_.learning_rate});
  std::vector<Matrix*> params;
  for (Matrix& w : gcn->weights()) params.push_back(&w);
  adam.Register(params);

  loss_history_.clear();
  loss_history_.reserve(config_.epochs);
  report_ = TrainReport{};
  report_.final_lr = config_.learning_rate;
  double best_loss = std::numeric_limits<double>::infinity();
  int epochs_without_improvement = 0;

  // Rollback target: the weights of the best healthy epoch so far (the
  // initial weights until one completes).
  std::vector<Matrix> snapshot = gcn->weights();
  double snapshot_loss = std::numeric_limits<double>::infinity();

  // Crash safety (DESIGN.md §8): restore the full mid-run state from the
  // newest valid checkpoint. Anything that prevents the restore — no
  // checkpoint yet, all copies corrupt, a config change that altered the
  // model shape — degrades to a fresh start; resume is an optimization, not
  // a correctness requirement.
  int start_epoch = 0;
  if (config_.resume_from_checkpoint && !config_.checkpoint_dir.empty()) {
    CheckpointManager manager(config_.checkpoint_dir);
    auto loaded = manager.LoadLatest();  // galign-lint: allow(context-dropped): CheckpointManager::LoadLatest is ctx-free by design (bounded startup restore); the flagged name is serve's ArtifactStore::LoadLatest(ctx)
    if (loaded.ok()) {
      TrainerCheckpoint& ckpt = loaded.ValueOrDie();
      if (!CheckpointMatchesModel(ckpt, params)) {
        GALIGN_LOG(Warning)
            << "Trainer: checkpoint under " << config_.checkpoint_dir
            << " does not match the model shape; starting fresh";
      } else {
        for (size_t i = 0; i < params.size(); ++i) {
          *params[i] = ckpt.weights[i];
        }
        adam.RestoreState(ckpt.adam_step, std::move(ckpt.adam_m),
                          std::move(ckpt.adam_v));
        adam.set_lr(ckpt.lr);
        snapshot = std::move(ckpt.snapshot);
        snapshot_loss = ckpt.snapshot_loss;
        best_loss = ckpt.best_loss;
        epochs_without_improvement = ckpt.epochs_without_improvement;
        loss_history_ = std::move(ckpt.loss_history);
        report_.epochs_run = ckpt.epochs_run;
        report_.steps_applied = ckpt.steps_applied;
        report_.rollbacks = ckpt.rollbacks;
        report_.rollback_epochs = std::move(ckpt.rollback_epochs);
        report_.final_lr = ckpt.final_lr;
        report_.final_loss = ckpt.final_loss;
        if (!ckpt.rng_state.empty()) {
          std::istringstream rs(ckpt.rng_state);
          rs >> rng->engine();
        }
        start_epoch = ckpt.epoch;
        report_.resumed = true;
        report_.resume_epoch = start_epoch;
        GALIGN_LOG(Info) << "Trainer: resumed from checkpoint at epoch "
                         << start_epoch << " (loss "
                         << report_.final_loss << ") under "
                         << config_.checkpoint_dir;
      }
    } else if (loaded.status().code() == StatusCode::kNotFound) {
      GALIGN_LOG(Info) << "Trainer: no checkpoint under "
                       << config_.checkpoint_dir << "; starting fresh";
    } else {
      GALIGN_LOG(Warning) << "Trainer: checkpoint restore failed ("
                          << loaded.status().message()
                          << "); starting fresh";
    }
  }

  // On a divergence event: restore the snapshot, drop contaminated Adam
  // moments, decay the learning rate. Returns NotConverged once the retry
  // budget is spent.
  auto rollback = [&](int epoch, const std::string& why) -> Status {
    ++report_.rollbacks;
    report_.rollback_epochs.push_back(epoch);
    if (report_.rollbacks > config_.max_rollbacks) {
      report_.diverged = true;
      return Status::NotConverged(
          "training diverged at epoch " + std::to_string(epoch) + " (" + why +
          ") after exhausting " + std::to_string(config_.max_rollbacks) +
          " rollback(s)");
    }
    for (size_t i = 0; i < params.size(); ++i) *params[i] = snapshot[i];
    adam.Reset();
    const double lr = adam.options().lr * config_.rollback_lr_decay;
    adam.set_lr(lr);
    report_.final_lr = lr;
    GALIGN_LOG(Warning) << "Trainer: " << why << " at epoch " << epoch
                        << "; rolled back to best snapshot (loss="
                        << snapshot_loss << "), lr decayed to " << lr << " ("
                        << report_.rollbacks << "/" << config_.max_rollbacks
                        << " rollbacks)";
    return Status::OK();
  };

  auto forward_augments =
      [&](Tape* tape, const std::vector<AugmentedNetwork>& augs,
          const std::vector<Var>& weight_vars,
          std::vector<std::vector<Var>>* layer_sets,
          std::vector<const std::vector<int64_t>*>* correspondences) {
        for (const AugmentedNetwork& a : augs) {
          layer_sets->push_back(gcn->ForwardWithWeights(
              tape, &a.laplacian, a.graph.attributes(), weight_vars));
          correspondences->push_back(&a.correspondence);
        }
      };

  CheckpointManager checkpointer(config_.checkpoint_dir);
  // Persists the state as of the END of `epoch` (resume restarts at
  // epoch + 1). Failures are logged, never fatal: losing a checkpoint must
  // not take down a healthy training run, and the previous durable copy is
  // untouched by a failed save.
  auto maybe_checkpoint = [&](int epoch) {
    if (config_.checkpoint_dir.empty()) return;
    const bool cadence = (epoch + 1) % config_.checkpoint_every == 0;
    const bool last = epoch + 1 == config_.epochs;
    if (!cadence && !last) return;
    TrainerCheckpoint ckpt;
    ckpt.epoch = epoch + 1;
    ckpt.lr = adam.options().lr;
    ckpt.adam_step = adam.step_count();
    for (const Matrix* p : params) ckpt.weights.push_back(*p);
    ckpt.adam_m = adam.first_moments();
    ckpt.adam_v = adam.second_moments();
    ckpt.snapshot = snapshot;
    ckpt.snapshot_loss = snapshot_loss;
    ckpt.best_loss = best_loss;
    ckpt.epochs_without_improvement = epochs_without_improvement;
    ckpt.loss_history = loss_history_;
    ckpt.epochs_run = report_.epochs_run;
    ckpt.steps_applied = report_.steps_applied;
    ckpt.rollbacks = report_.rollbacks;
    ckpt.rollback_epochs = report_.rollback_epochs;
    ckpt.final_lr = report_.final_lr;
    ckpt.final_loss = report_.final_loss;
    {
      std::ostringstream rs;
      rs << rng->engine();
      ckpt.rng_state = rs.str();
    }
    Status st = checkpointer.Save(ckpt);
    if (st.ok()) {
      ++report_.checkpoints_written;
    } else {
      GALIGN_LOG(Warning) << "Trainer: checkpoint save at epoch " << epoch
                          << " failed (" << st.message()
                          << "); training continues";
    }
  };

  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    // Cooperative cancellation: wind down with the best-so-far weights
    // before spending another forward/backward pass.
    if (ctx.ShouldStop()) {
      report_.deadline_exceeded = ctx.DeadlineExceeded();
      report_.cancelled = ctx.Cancelled();
      GALIGN_LOG(Info) << "Trainer: stopping at epoch " << epoch << " ("
                       << (report_.cancelled ? "cancelled"
                                             : "deadline exceeded")
                       << "); returning best-so-far weights";
      break;
    }
    Tape tape;
    std::vector<Var> weight_vars = gcn->MakeWeightLeaves(&tape);
    std::vector<Var> hs = gcn->ForwardWithWeights(
        &tape, &lap_s, source.attributes(), weight_vars);
    std::vector<Var> ht = gcn->ForwardWithWeights(
        &tape, &lap_t, target.attributes(), weight_vars);

    std::vector<std::vector<Var>> aug_layers_s, aug_layers_t;
    std::vector<const std::vector<int64_t>*> corr_s, corr_t;
    forward_augments(&tape, aug_s, weight_vars, &aug_layers_s, &corr_s);
    forward_augments(&tape, aug_t, weight_vars, &aug_layers_t, &corr_t);

    // Alg. 1 lines 11-12: the loss is evaluated for G_s and G_t only; the
    // augmented embeddings participate through the adaptivity terms.
    Var loss_s =
        NetworkLoss(&tape, &lap_s, hs, aug_layers_s, corr_s, config_);
    Var loss_t =
        NetworkLoss(&tape, &lap_t, ht, aug_layers_t, corr_t, config_);
    std::vector<std::pair<Var, double>> terms{{loss_s, 1.0}, {loss_t, 1.0}};
    if (config_.seed_loss_weight > 0.0 && !seeds.empty()) {
      // Semi-supervised extension: pull seed anchor pairs together at every
      // GCN layer.
      for (size_t l = 1; l < hs.size(); ++l) {
        terms.emplace_back(ag::AnchorLoss(&tape, hs[l], ht[l], seeds),
                           config_.seed_loss_weight);
      }
    }
    Var total = ag::WeightedSum(&tape, terms);

    ++report_.epochs_run;
    const double loss_value =
        fault::Perturb("train.loss", tape.value(total)(0, 0));
    if (!std::isfinite(loss_value)) {
      GALIGN_RETURN_NOT_OK(rollback(epoch, "non-finite loss"));
      continue;
    }

    tape.Backward(total);
    if (!weight_vars.empty()) {
      Matrix* g0 = tape.EnsureGrad(weight_vars.front());
      fault::CorruptBuffer("train.grad", g0->data(), g0->size());
    }

    std::vector<const Matrix*> grads;
    grads.reserve(weight_vars.size());
    for (Var w : weight_vars) grads.push_back(&tape.grad(w));

    const GradientHealth health = ProbeGradients(grads);
    if (!health.finite) {
      GALIGN_RETURN_NOT_OK(rollback(epoch, "non-finite gradient"));
      continue;
    }
    if (config_.max_grad_norm > 0.0 && health.norm > config_.max_grad_norm) {
      GALIGN_RETURN_NOT_OK(rollback(
          epoch, "gradient explosion (norm " + std::to_string(health.norm) +
                     " > " + std::to_string(config_.max_grad_norm) + ")"));
      continue;
    }

    adam.Step(params, grads);
    ++report_.steps_applied;

    bool weights_finite = true;
    for (const Matrix* p : params) weights_finite &= p->AllFinite();
    if (!weights_finite) {
      GALIGN_RETURN_NOT_OK(rollback(epoch, "non-finite weights after step"));
      continue;
    }

    loss_history_.push_back(loss_value);
    report_.final_loss = loss_value;
    if (loss_value < snapshot_loss) {
      snapshot_loss = loss_value;
      snapshot = gcn->weights();
    }

    bool early_stop = false;
    if (config_.early_stop_patience > 0) {
      // First epoch always establishes the baseline (inf - tol*inf is NaN).
      const double bar =
          std::isfinite(best_loss)
              ? best_loss - config_.early_stop_tolerance * std::fabs(best_loss)
              : loss_value + 1.0;
      if (loss_value < bar) {
        best_loss = loss_value;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >=
                 config_.early_stop_patience) {
        early_stop = true;
      }
    }

    // Checkpoint AFTER the early-stopping counters are folded in, so a
    // resumed run replays the exact decision state of the original.
    maybe_checkpoint(epoch);
    if (early_stop) break;
  }
  if (report_.recovered()) {
    GALIGN_LOG(Info) << "Trainer recovered from " << report_.rollbacks
                     << " divergence event(s); final loss "
                     << report_.final_loss << ", final lr "
                     << report_.final_lr;
  }
  return Status::OK();
}

}  // namespace galign
