// Persistence for trained GCN models: train once, reuse across processes
// (e.g. embed new snapshots of the same networks, or serve alignment
// queries without retraining). Plain-text format with a header carrying the
// architecture so loading validates shape compatibility.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/gcn.h"
#include "la/matrix.h"

namespace galign {

/// \brief Emits `key <count>` then each matrix as `rows cols` + hex-encoded
/// (bit-exact) doubles — the shared durable matrix-list encoding used by
/// trainer checkpoints and the serving artifact.
void EmitMatrixList(std::ostringstream* out, const char* key,
                    const std::vector<Matrix>& ms);

/// \brief Inverse of EmitMatrixList. Every defect (wrong key, absurd or
/// overflowing shape, truncated or malformed payload) is an IOError naming
/// `context`.
[[nodiscard]] Status ParseMatrixList(std::istringstream* in, const char* key,
                                     std::vector<Matrix>* out,
                                     const std::string& context);

/// Serializes the model architecture + weights to the galign-gcn-v1 text
/// payload (no CRC trailer). The string form exists so containers — the
/// serving AlignmentIndex artifact (DESIGN.md §12) — can embed a model
/// inside a larger durable file instead of managing a sidecar path.
std::string SerializeGcnModel(const MultiOrderGcn& gcn);

/// Parses a galign-gcn-v1 payload (trailer already stripped). `context`
/// names the source in error messages (a path, or "artifact <p> model
/// section").
[[nodiscard]] Result<MultiOrderGcn> ParseGcnModel(const std::string& payload,
                                                  const std::string& context);

/// Writes the model architecture + weights to `path` (CRC-trailed,
/// atomically renamed into place).
[[nodiscard]] Status SaveGcnModel(const MultiOrderGcn& gcn, const std::string& path);

/// Reads a model written by SaveGcnModel. The activation is restored from
/// the header.
[[nodiscard]] Result<MultiOrderGcn> LoadGcnModel(const std::string& path);

}  // namespace galign
