// Persistence for trained GCN models: train once, reuse across processes
// (e.g. embed new snapshots of the same networks, or serve alignment
// queries without retraining). Plain-text format with a header carrying the
// architecture so loading validates shape compatibility.
#pragma once

#include <string>

#include "common/status.h"
#include "core/gcn.h"

namespace galign {

/// Writes the model architecture + weights to `path`.
[[nodiscard]] Status SaveGcnModel(const MultiOrderGcn& gcn, const std::string& path);

/// Reads a model written by SaveGcnModel. The activation is restored from
/// the header.
[[nodiscard]] Result<MultiOrderGcn> LoadGcnModel(const std::string& path);

}  // namespace galign
