#include "core/galign.h"

#include <algorithm>
#include <utility>

#include "core/refinement.h"
#include "graph/ann/ann.h"
#include "la/ops.h"
#include "core/trainer.h"

namespace galign {

Result<Matrix> GAlignAligner::Align(const AttributedGraph& source,
                                    const AttributedGraph& target,
                                    const Supervision& supervision,
                                    const RunContext& ctx) {
  GALIGN_RETURN_NOT_OK(config_.Validate());
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument(
        "GAlign requires equal attribute dimensionality");
  }
  MemoryScope admission;
  GALIGN_RETURN_NOT_OK(
      ReserveAlignerBudget(*this, source, target, ctx, &admission));

  Rng rng(config_.seed);
  MultiOrderGcn gcn(config_.num_layers, source.num_attributes(),
                    config_.embedding_dim, &rng);

  Trainer trainer(config_);
  // The paper's model is fully unsupervised and ignores supervision; seeds
  // only enter training when the semi-supervised extension is enabled
  // (seed_loss_weight > 0).
  const auto& seeds = config_.seed_loss_weight > 0.0
                          ? supervision.seeds
                          : std::vector<std::pair<int64_t, int64_t>>{};
  GALIGN_RETURN_NOT_OK(trainer.Train(&gcn, source, target, &rng, seeds, ctx));
  last_loss_history_ = trainer.loss_history();
  last_train_report_ = trainer.report();
  last_refinement_scores_.clear();

  if (config_.use_refinement) {
    auto refined = RefineAlignment(gcn, source, target, config_, ctx);
    if (!refined.ok()) return refined.status();
    last_refinement_scores_ = refined.ValueOrDie().score_history;
    return std::move(refined.ValueOrDie().alignment);
  }

  // GAlign-2 path: aggregate the trained embeddings directly (Eq. 12).
  auto lap_s = source.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_s.status());
  auto lap_t = target.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_t.status());
  std::vector<Matrix> hs =
      gcn.ForwardInference(lap_s.ValueOrDie(), source.attributes());
  std::vector<Matrix> ht =
      gcn.ForwardInference(lap_t.ValueOrDie(), target.attributes());
  return AggregateAlignment(hs, ht, config_.EffectiveLayerWeights());
}

uint64_t GAlignAligner::EstimateTrainBytes(int64_t n_source, int64_t n_target,
                                           int64_t dims) const {
  const int64_t d = std::max<int64_t>(config_.embedding_dim, dims);
  const int64_t layers = config_.num_layers + 1;
  // One set of per-layer embeddings for both networks.
  const uint64_t embeds = DenseBytes(n_source + n_target, d) *
                          static_cast<uint64_t>(layers);
  // Each training step embeds every (possibly augmented) view with forward
  // activations, gradients, and Adam moments alive together; refinement
  // keeps current + best embedding sets plus two scan chunks.
  const uint64_t views =
      config_.use_augmentation
          ? static_cast<uint64_t>(1 + config_.num_augmentations)
          : 1;
  return 4 * views * embeds + 4 * embeds + 2 * DenseBytes(512, n_target);
}

uint64_t GAlignAligner::EstimatePeakBytes(int64_t n_source, int64_t n_target,
                                          int64_t dims) const {
  return EstimateTrainBytes(n_source, n_target, dims) +
         DenseBytes(n_source, n_target);
}

Result<TopKAlignment> GAlignAligner::AlignTopK(const AttributedGraph& source,
                                               const AttributedGraph& target,
                                               const Supervision& supervision,
                                               const RunContext& ctx,
                                               int64_t k) {
  GALIGN_RETURN_NOT_OK(config_.Validate());
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument(
        "GAlign requires equal attribute dimensionality");
  }
  // Admit only the training/refinement working set — this path never
  // materializes the n1 x n2 aggregation the dense estimate includes.
  MemoryScope train_scope;
  if (ctx.HasMemoryLimit()) {
    GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
        ctx.budget(),
        EstimateTrainBytes(source.num_nodes(), target.num_nodes(),
                           source.num_attributes()),
        name_ + " training admission", &train_scope));
  }

  Rng rng(config_.seed);
  MultiOrderGcn gcn(config_.num_layers, source.num_attributes(),
                    config_.embedding_dim, &rng);
  Trainer trainer(config_);
  const auto& seeds = config_.seed_loss_weight > 0.0
                          ? supervision.seeds
                          : std::vector<std::pair<int64_t, int64_t>>{};
  GALIGN_RETURN_NOT_OK(trainer.Train(&gcn, source, target, &rng, seeds, ctx));
  last_loss_history_ = trainer.loss_history();
  last_train_report_ = trainer.report();
  last_refinement_scores_.clear();

  const std::vector<double> theta = config_.EffectiveLayerWeights();
  std::vector<Matrix> hs, ht;
  if (config_.use_refinement) {
    auto refined = RefineAlignment(gcn, source, target, config_, ctx,
                                   /*materialize=*/false, &ann_policy_);
    if (!refined.ok()) return refined.status();
    last_refinement_scores_ = refined.ValueOrDie().score_history;
    hs = std::move(refined.ValueOrDie().source_embeddings);
    ht = std::move(refined.ValueOrDie().target_embeddings);
  } else {
    auto lap_s = source.NormalizedAdjacency();
    GALIGN_RETURN_NOT_OK(lap_s.status());
    auto lap_t = target.NormalizedAdjacency();
    GALIGN_RETURN_NOT_OK(lap_t.status());
    hs = gcn.ForwardInference(lap_s.ValueOrDie(), source.attributes());
    ht = gcn.ForwardInference(lap_t.ValueOrDie(), target.attributes());
  }

  // Training transients are gone; re-reserve only the surviving embeddings
  // so the chunked scan sizes its block from the true remaining headroom.
  train_scope.reset();
  MemoryScope embed_scope;
  if (ctx.HasMemoryLimit()) {
    uint64_t live = 0;
    for (const Matrix& h : hs) live += DenseBytes(h.rows(), h.cols());
    for (const Matrix& h : ht) live += DenseBytes(h.rows(), h.cols());
    GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
        ctx.budget(), live, name_ + " refined embeddings", &embed_scope));
  }
  if (ShouldUseAnn(ann_policy_, source.num_nodes(), target.num_nodes())) {
    return AnnEmbeddingTopK(hs, ht, theta, k, ann_policy_, ctx);
  }
  return ChunkedEmbeddingTopK(hs, ht, theta, k, ctx);
}

Result<MultiOrderEmbeddings> EmbedNetworks(const GAlignConfig& config,
                                           const AttributedGraph& source,
                                           const AttributedGraph& target) {
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument(
        "EmbedNetworks requires equal attribute dimensionality");
  }
  Rng rng(config.seed);
  MultiOrderGcn gcn(config.num_layers, source.num_attributes(),
                    config.embedding_dim, &rng);
  Trainer trainer(config);
  GALIGN_RETURN_NOT_OK(trainer.Train(&gcn, source, target, &rng));

  auto lap_s = source.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_s.status());
  auto lap_t = target.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_t.status());

  MultiOrderEmbeddings out;
  out.source_layers =
      gcn.ForwardInference(lap_s.ValueOrDie(), source.attributes());
  out.target_layers =
      gcn.ForwardInference(lap_t.ValueOrDie(), target.attributes());
  std::vector<const Matrix*> ps, pt;
  for (const Matrix& h : out.source_layers) ps.push_back(&h);
  for (const Matrix& h : out.target_layers) pt.push_back(&h);
  out.source_concat = ConcatCols(ps);
  out.target_concat = ConcatCols(pt);
  return out;
}

GAlignConfig GAlignAligner::WithoutAugmentation(GAlignConfig base) {
  base.use_augmentation = false;
  return base;
}

GAlignConfig GAlignAligner::WithoutRefinement(GAlignConfig base) {
  base.use_refinement = false;
  return base;
}

GAlignConfig GAlignAligner::FinalLayerOnly(GAlignConfig base) {
  base.final_layer_only = true;
  return base;
}

}  // namespace galign
