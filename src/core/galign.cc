#include "core/galign.h"

#include "core/refinement.h"
#include "la/ops.h"
#include "core/trainer.h"

namespace galign {

Result<Matrix> GAlignAligner::Align(const AttributedGraph& source,
                                    const AttributedGraph& target,
                                    const Supervision& supervision,
                                    const RunContext& ctx) {
  GALIGN_RETURN_NOT_OK(config_.Validate());
  if (source.num_nodes() == 0 || target.num_nodes() == 0) {
    return Status::InvalidArgument("empty network");
  }
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument(
        "GAlign requires equal attribute dimensionality");
  }

  Rng rng(config_.seed);
  MultiOrderGcn gcn(config_.num_layers, source.num_attributes(),
                    config_.embedding_dim, &rng);

  Trainer trainer(config_);
  // The paper's model is fully unsupervised and ignores supervision; seeds
  // only enter training when the semi-supervised extension is enabled
  // (seed_loss_weight > 0).
  const auto& seeds = config_.seed_loss_weight > 0.0
                          ? supervision.seeds
                          : std::vector<std::pair<int64_t, int64_t>>{};
  GALIGN_RETURN_NOT_OK(trainer.Train(&gcn, source, target, &rng, seeds, ctx));
  last_loss_history_ = trainer.loss_history();
  last_train_report_ = trainer.report();
  last_refinement_scores_.clear();

  if (config_.use_refinement) {
    auto refined = RefineAlignment(gcn, source, target, config_, ctx);
    if (!refined.ok()) return refined.status();
    last_refinement_scores_ = refined.ValueOrDie().score_history;
    return std::move(refined.ValueOrDie().alignment);
  }

  // GAlign-2 path: aggregate the trained embeddings directly (Eq. 12).
  auto lap_s = source.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_s.status());
  auto lap_t = target.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_t.status());
  std::vector<Matrix> hs =
      gcn.ForwardInference(lap_s.ValueOrDie(), source.attributes());
  std::vector<Matrix> ht =
      gcn.ForwardInference(lap_t.ValueOrDie(), target.attributes());
  return AggregateAlignment(hs, ht, config_.EffectiveLayerWeights());
}

Result<MultiOrderEmbeddings> EmbedNetworks(const GAlignConfig& config,
                                           const AttributedGraph& source,
                                           const AttributedGraph& target) {
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument(
        "EmbedNetworks requires equal attribute dimensionality");
  }
  Rng rng(config.seed);
  MultiOrderGcn gcn(config.num_layers, source.num_attributes(),
                    config.embedding_dim, &rng);
  Trainer trainer(config);
  GALIGN_RETURN_NOT_OK(trainer.Train(&gcn, source, target, &rng));

  auto lap_s = source.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_s.status());
  auto lap_t = target.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_t.status());

  MultiOrderEmbeddings out;
  out.source_layers =
      gcn.ForwardInference(lap_s.ValueOrDie(), source.attributes());
  out.target_layers =
      gcn.ForwardInference(lap_t.ValueOrDie(), target.attributes());
  std::vector<const Matrix*> ps, pt;
  for (const Matrix& h : out.source_layers) ps.push_back(&h);
  for (const Matrix& h : out.target_layers) pt.push_back(&h);
  out.source_concat = ConcatCols(ps);
  out.target_concat = ConcatCols(pt);
  return out;
}

GAlignConfig GAlignAligner::WithoutAugmentation(GAlignConfig base) {
  base.use_augmentation = false;
  return base;
}

GAlignConfig GAlignAligner::WithoutRefinement(GAlignConfig base) {
  base.use_refinement = false;
  return base;
}

GAlignConfig GAlignAligner::FinalLayerOnly(GAlignConfig base) {
  base.final_layer_only = true;
  return base;
}

}  // namespace galign
