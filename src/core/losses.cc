#include "core/losses.h"

#include "common/logging.h"

namespace galign {

Var ConsistencyLossAllLayers(Tape* tape, const SparseMatrix* laplacian,
                             const std::vector<Var>& layers) {
  GALIGN_DCHECK(layers.size() >= 2);
  std::vector<std::pair<Var, double>> terms;
  for (size_t l = 1; l < layers.size(); ++l) {
    terms.emplace_back(ag::ConsistencyLoss(tape, laplacian, layers[l]), 1.0);
  }
  return ag::WeightedSum(tape, terms);
}

Var AdaptivityLossAllLayers(Tape* tape, const std::vector<Var>& layers,
                            const std::vector<Var>& augmented_layers,
                            const std::vector<int64_t>& correspondence,
                            double threshold) {
  GALIGN_DCHECK(layers.size() == augmented_layers.size());
  std::vector<std::pair<Var, double>> terms;
  for (size_t l = 1; l < layers.size(); ++l) {
    terms.emplace_back(
        ag::AdaptivityLoss(tape, layers[l], augmented_layers[l],
                           correspondence, threshold),
        1.0);
  }
  return ag::WeightedSum(tape, terms);
}

Var NetworkLoss(Tape* tape, const SparseMatrix* laplacian,
                const std::vector<Var>& layers,
                const std::vector<std::vector<Var>>& augmented,
                const std::vector<const std::vector<int64_t>*>& correspondences,
                const GAlignConfig& cfg) {
  GALIGN_DCHECK(augmented.size() == correspondences.size());
  Var consistency = ConsistencyLossAllLayers(tape, laplacian, layers);
  std::vector<std::pair<Var, double>> terms;
  terms.emplace_back(consistency, cfg.gamma);
  for (size_t i = 0; i < augmented.size(); ++i) {
    Var adaptive =
        AdaptivityLossAllLayers(tape, layers, augmented[i],
                                *correspondences[i],
                                cfg.adaptivity_threshold);
    terms.emplace_back(adaptive, 1.0 - cfg.gamma);
  }
  return ag::WeightedSum(tape, terms);
}

}  // namespace galign
