#include "core/model_io.h"

#include <cmath>
#include <sstream>

#include "common/durable_io.h"
#include "common/fault.h"
#include "common/parse.h"

namespace galign {

namespace {

const char* ActivationName(Activation a) {
  switch (a) {
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
    case Activation::kLinear:
      return "linear";
  }
  return "tanh";
}

Result<Activation> ParseActivation(const std::string& name) {
  if (name == "tanh") return Activation::kTanh;
  if (name == "relu") return Activation::kRelu;
  if (name == "linear") return Activation::kLinear;
  return Status::IOError("unknown activation: " + name);
}

}  // namespace

void EmitMatrixList(std::ostringstream* out, const char* key,
                    const std::vector<Matrix>& ms) {
  *out << key << " " << ms.size() << "\n";
  for (const Matrix& m : ms) {
    *out << m.rows() << " " << m.cols() << "\n";
    for (int64_t i = 0; i < m.size(); ++i) {
      if (i) *out << (i % 8 == 0 ? "\n" : " ");
      *out << HexDouble(m.data()[i]);
    }
    if (m.size()) *out << "\n";
  }
}

Status ParseMatrixList(std::istringstream* in, const char* key,
                       std::vector<Matrix>* out, const std::string& context) {
  std::string tok;
  size_t count = 0;
  if (!(*in >> tok) || tok != key || !(*in >> count) || count > 4096) {
    return Status::IOError("expected '" + std::string(key) +
                           " <count>' in " + context);
  }
  out->clear();
  out->reserve(count);
  for (size_t k = 0; k < count; ++k) {
    int64_t rows = -1, cols = -1;
    // Shape caps bound the allocation a corrupt header could request
    // before any payload validation runs.
    if (!(*in >> rows >> cols) || rows < 0 || cols < 0 ||
        rows > (int64_t{1} << 30) || cols > (int64_t{1} << 30) ||
        rows * cols > (int64_t{1} << 32)) {
      return Status::IOError("bad matrix shape under '" + std::string(key) +
                             "' in " + context);
    }
    Matrix m(rows, cols);
    for (int64_t i = 0; i < m.size(); ++i) {
      if (!(*in >> tok)) {
        return Status::IOError("truncated matrix under '" + std::string(key) +
                               "' in " + context);
      }
      auto v = ParseHexDouble(tok, context);
      GALIGN_RETURN_NOT_OK(v.status());
      m.data()[i] = v.ValueOrDie();
    }
    out->push_back(std::move(m));
  }
  return Status::OK();
}

std::string SerializeGcnModel(const MultiOrderGcn& gcn) {
  std::ostringstream out;
  out.precision(17);
  out << "galign-gcn-v1 layers=" << gcn.num_layers()
      << " input_dim=" << gcn.input_dim()
      << " embedding_dim=" << gcn.embedding_dim() << " activation="
      << ActivationName(gcn.activation()) << "\n";
  for (const Matrix& w : gcn.weights()) {
    out << w.rows() << " " << w.cols() << "\n";
    for (int64_t r = 0; r < w.rows(); ++r) {
      for (int64_t c = 0; c < w.cols(); ++c) {
        if (c) out << " ";
        out << w(r, c);
      }
      out << "\n";
    }
  }
  return out.str();
}

Status SaveGcnModel(const MultiOrderGcn& gcn, const std::string& path) {
  // CRC trailer + temp-and-rename: a crash mid-save leaves either the old
  // model or nothing, never a torn file that LoadGcnModel would half-parse.
  return AtomicWriteFile(path, AppendCrc32Trailer(SerializeGcnModel(gcn)));
}

Result<MultiOrderGcn> LoadGcnModel(const std::string& path) {
  // Transient faults (injected or real EINTR-class hiccups) get a bounded,
  // jittered retry; everything past the raw read is deterministic parsing
  // that retrying could never fix.
  auto content =
      RetryTransientResult(RetryPolicy{}, [&]() -> Result<std::string> {
        if (fault::ShouldFailIO("io.model.load")) {
          return Status::IOError("injected fault: cannot read model file " +
                                 path);
        }
        return ReadFileToString(path);
      });
  GALIGN_RETURN_NOT_OK(content.status());
  // Legacy files predate the trailer, so it is optional; when present it
  // must verify.
  auto payload = StripAndVerifyCrc32Trailer(content.ValueOrDie(),
                                            /*require_trailer=*/false, path);
  GALIGN_RETURN_NOT_OK(payload.status());
  return ParseGcnModel(payload.ValueOrDie(), path);
}

Result<MultiOrderGcn> ParseGcnModel(const std::string& payload,
                                    const std::string& context) {
  const std::string& path = context;
  std::istringstream in(payload);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::IOError("empty model file: " + path);
  }
  std::istringstream hs(header);
  std::string magic;
  hs >> magic;
  if (magic != "galign-gcn-v1") {
    return Status::IOError("not a galign model file (bad magic '" + magic +
                           "'): " + path);
  }
  int64_t layers = 0, input_dim = 0, embedding_dim = 0;
  std::string activation_name = "tanh";
  std::string field;
  while (hs >> field) {
    auto eq = field.find('=');
    if (eq == std::string::npos) continue;
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    if (key == "activation") {
      activation_name = value;
      continue;
    }
    if (key == "layers" || key == "input_dim" || key == "embedding_dim") {
      auto parsed = ParseInt64(value, key.c_str());
      if (!parsed.ok()) {
        return Status::IOError("bad model header in " + path + ": " +
                               parsed.status().message());
      }
      if (key == "layers") layers = parsed.ValueOrDie();
      if (key == "input_dim") input_dim = parsed.ValueOrDie();
      if (key == "embedding_dim") embedding_dim = parsed.ValueOrDie();
    }
  }
  // The layer cap guards against allocating absurd amounts of memory off a
  // corrupt header before the per-layer shape checks would catch it.
  if (layers < 1 || layers > 1024 || input_dim < 1 || embedding_dim < 1) {
    return Status::IOError("malformed model header (expected layers in "
                           "[1, 1024] and positive dims) in " +
                           path + ": " + header);
  }
  auto activation = ParseActivation(activation_name);
  GALIGN_RETURN_NOT_OK(activation.status());

  Rng rng(0);  // weights are overwritten below
  MultiOrderGcn gcn(static_cast<int>(layers), input_dim, embedding_dim, &rng,
                    activation.ValueOrDie());
  for (int64_t l = 0; l < layers; ++l) {
    int64_t rows, cols;
    if (!(in >> rows >> cols)) {
      return Status::IOError("truncated model file (missing shape of layer " +
                             std::to_string(l) + "): " + path);
    }
    Matrix& w = gcn.weights()[l];
    if (rows != w.rows() || cols != w.cols()) {
      return Status::IOError(
          "layer " + std::to_string(l) + " shape mismatch in " + path +
          ": file says " + std::to_string(rows) + "x" + std::to_string(cols) +
          ", header implies " + std::to_string(w.rows()) + "x" +
          std::to_string(w.cols()));
    }
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        std::string tok;
        if (!(in >> tok)) {
          return Status::IOError("truncated model file (layer " +
                                 std::to_string(l) + ", weight (" +
                                 std::to_string(r) + ", " +
                                 std::to_string(c) + ")): " + path);
        }
        auto v = ParseDouble(tok, "weight");
        if (!v.ok()) {
          return Status::IOError("layer " + std::to_string(l) + ", weight (" +
                                 std::to_string(r) + ", " +
                                 std::to_string(c) + ") in " + path + ": " +
                                 v.status().message());
        }
        if (!std::isfinite(v.ValueOrDie())) {
          return Status::IOError("non-finite weight at layer " +
                                 std::to_string(l) + ", (" +
                                 std::to_string(r) + ", " +
                                 std::to_string(c) + ") in " + path);
        }
        w(r, c) = v.ValueOrDie();
      }
    }
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::IOError("trailing data after last layer ('" + trailing +
                           "' ...) in " + path);
  }
  return gcn;
}

}  // namespace galign
