#include "core/model_io.h"

#include <fstream>
#include <sstream>

namespace galign {

namespace {

const char* ActivationName(Activation a) {
  switch (a) {
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
    case Activation::kLinear:
      return "linear";
  }
  return "tanh";
}

Result<Activation> ParseActivation(const std::string& name) {
  if (name == "tanh") return Activation::kTanh;
  if (name == "relu") return Activation::kRelu;
  if (name == "linear") return Activation::kLinear;
  return Status::IOError("unknown activation: " + name);
}

}  // namespace

Status SaveGcnModel(const MultiOrderGcn& gcn, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.precision(17);
  out << "galign-gcn-v1 layers=" << gcn.num_layers()
      << " input_dim=" << gcn.input_dim()
      << " embedding_dim=" << gcn.embedding_dim() << " activation="
      << ActivationName(gcn.activation()) << "\n";
  for (const Matrix& w : gcn.weights()) {
    out << w.rows() << " " << w.cols() << "\n";
    for (int64_t r = 0; r < w.rows(); ++r) {
      for (int64_t c = 0; c < w.cols(); ++c) {
        if (c) out << " ";
        out << w(r, c);
      }
      out << "\n";
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<MultiOrderGcn> LoadGcnModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::IOError("empty model file: " + path);
  }
  std::istringstream hs(header);
  std::string magic;
  hs >> magic;
  if (magic != "galign-gcn-v1") {
    return Status::IOError("not a galign model file: " + path);
  }
  int layers = 0;
  int64_t input_dim = 0, embedding_dim = 0;
  std::string activation_name = "tanh";
  std::string field;
  while (hs >> field) {
    auto eq = field.find('=');
    if (eq == std::string::npos) continue;
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    if (key == "layers") layers = std::stoi(value);
    if (key == "input_dim") input_dim = std::stoll(value);
    if (key == "embedding_dim") embedding_dim = std::stoll(value);
    if (key == "activation") activation_name = value;
  }
  if (layers < 1 || input_dim < 1 || embedding_dim < 1) {
    return Status::IOError("malformed model header: " + header);
  }
  auto activation = ParseActivation(activation_name);
  GALIGN_RETURN_NOT_OK(activation.status());

  Rng rng(0);  // weights are overwritten below
  MultiOrderGcn gcn(layers, input_dim, embedding_dim, &rng,
                    activation.ValueOrDie());
  for (int l = 0; l < layers; ++l) {
    int64_t rows, cols;
    if (!(in >> rows >> cols)) {
      return Status::IOError("truncated model file (layer header)");
    }
    Matrix& w = gcn.weights()[l];
    if (rows != w.rows() || cols != w.cols()) {
      return Status::IOError("layer shape mismatch in model file");
    }
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        if (!(in >> w(r, c))) {
          return Status::IOError("truncated model file (weights)");
        }
      }
    }
  }
  return gcn;
}

}  // namespace galign
