// Alignment instantiation and stability-based refinement (paper §VI).
//
// Layer-wise alignment matrices S^(l) = H_s^(l) H_t^(l)T (Eq. 11) are
// aggregated by layer importances theta (Eq. 12). Refinement (Alg. 2)
// iteratively detects stable nodes (Eq. 13), amplifies their influence
// (Eq. 14) inside the propagation matrix (Eq. 15), re-embeds, and keeps the
// candidate with the best greedy score g(S) = sum_v max_u S(v, u).
//
// The scan over S^(l) is chunked over source rows so no layer-wise n1 x n2
// matrix is materialized (the paper's O(n) space argument, §VI-C).
#pragma once

#include <vector>

#include "common/convergence.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/config.h"
#include "core/gcn.h"
#include "graph/ann/ann_index.h"
#include "graph/graph.h"
#include "la/matrix.h"

namespace galign {

/// Aggregated alignment matrix S = sum_l theta_l H_s^(l) H_t^(l)T (Eq. 12).
/// hs/ht hold k+1 layer embeddings; theta must have k+1 entries.
Matrix AggregateAlignment(const std::vector<Matrix>& hs,
                          const std::vector<Matrix>& ht,
                          const std::vector<double>& theta);

/// Result of one streaming pass over all layer-wise alignment matrices.
struct StabilityScan {
  /// Source nodes satisfying Eq. 13 (consistent argmax across layers, all
  /// layer scores above lambda).
  std::vector<int64_t> stable_source;
  /// Target nodes satisfying the symmetric column-wise condition.
  std::vector<int64_t> stable_target;
  /// g(S) = sum_v max_u S(v, u) of the aggregated matrix.
  double aggregate_score = 0.0;
};

/// Single chunked pass computing stable nodes and g(S) without storing any
/// n1 x n2 matrix.
StabilityScan ScanStability(const std::vector<Matrix>& hs,
                            const std::vector<Matrix>& ht,
                            const std::vector<double>& theta, double lambda);

/// \brief Candidate-pair stability scan (DESIGN.md §11): O(n * k̃) instead
/// of O(n1 * n2).
///
/// Retrieves policy.refine_candidates targets per source row from an ANN
/// index over the concatenated target layers, then evaluates the per-layer
/// argmax statistics of Eq. 13 over those pairs only. Row statistics are
/// exact whenever the aggregate argmax is recalled; column statistics are
/// maxima over the retrieved pair set (the symmetric condition evaluated
/// on the same candidates, not a second index). Tie-breaking matches
/// ScanStability: first maximum wins, scanning ascending ids.
[[nodiscard]] Result<StabilityScan> ScanStabilityCandidates(
    const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
    const std::vector<double>& theta, double lambda, const AnnPolicy& policy,
    const RunContext& ctx);

/// Outcome of the refinement search.
struct RefinementResult {
  /// Best aggregated S found. Empty (0 x 0) when RefineAlignment was asked
  /// not to materialize it — budget-degraded callers rank the
  /// source/target_embeddings through the chunked top-k kernel instead.
  Matrix alignment;
  double best_score = 0.0;            ///< g of that S
  int best_iteration = 0;             ///< iteration it was found at
  std::vector<double> score_history;  ///< g(S) per iteration (index 0 = init)
  /// Layer embeddings (H^(0)..H^(k)) of the best-scoring iteration — the
  /// refined multi-order features (used e.g. by the Fig. 8 visualization).
  std::vector<Matrix> source_embeddings;
  std::vector<Matrix> target_embeddings;
  /// How the refinement loop exited: converged = the relative g(S)
  /// improvement fell below config.refinement_tolerance (always true at
  /// budget exhaustion when the tolerance is 0), residual = last relative
  /// improvement. degraded = influence compounding drove the embeddings
  /// non-finite and the loop fell back to the best finite iterate.
  ConvergenceReport report;
};

/// \brief Runs Alg. 2 with the trained GCN.
///
/// Re-embeds both networks every iteration under the updated influence
/// factors and returns the best-scoring aggregated alignment matrix. When
/// `ctx` carries a deadline/cancellation token, the iteration loop winds
/// down early and returns the best iterate found so far (report.degraded).
///
/// The refinement loop itself never holds an n1 x n2 matrix (ScanStability
/// streams in row chunks); the only dense materialization is the final
/// aggregation, skipped when `materialize` is false (DESIGN.md §9's
/// budget-degraded path, which consumes the embeddings instead).
///
/// When `ann` is non-null and ShouldUseAnn admits the problem size, each
/// iteration's stability scan runs over retrieved candidate pairs
/// (ScanStabilityCandidates) instead of the full cross product; a scan
/// whose index cannot be admitted falls back to the exact pass.
[[nodiscard]] Result<RefinementResult> RefineAlignment(const MultiOrderGcn& gcn,
                                         const AttributedGraph& source,
                                         const AttributedGraph& target,
                                         const GAlignConfig& config,
                                         const RunContext& ctx = RunContext(),
                                         bool materialize = true,
                                         const AnnPolicy* ann = nullptr);

}  // namespace galign
