// Loss composition for GAlign training (paper §V-B..§V-D):
//   J_c(G)      = sum_l || C - H^(l) H^(l)T ||_F                    (Eq. 7)
//   J_a(G, G*)  = sum_v sum_l sigma_<( || H^(l)(v) - H^(l)(v*) || ) (Eq. 9)
//   J(G)        = gamma J_c(G) + (1 - gamma) sum_{G*} J_a(G, G*)    (Eq. 10)
#pragma once

#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "core/config.h"
#include "la/sparse.h"

namespace galign {

/// Consistency loss (Eq. 7) over layers 1..k of `layers` (index 0 is H^(0)).
Var ConsistencyLossAllLayers(Tape* tape, const SparseMatrix* laplacian,
                             const std::vector<Var>& layers);

/// Adaptivity loss (Eq. 9) between a network's layers and one augmented
/// copy's layers, matched through `correspondence`.
Var AdaptivityLossAllLayers(Tape* tape, const std::vector<Var>& layers,
                            const std::vector<Var>& augmented_layers,
                            const std::vector<int64_t>& correspondence,
                            double threshold);

/// Full per-network objective J(G) (Eq. 10). `augmented` holds the layer
/// vars of each augmented copy; `correspondences` the matching node maps.
Var NetworkLoss(Tape* tape, const SparseMatrix* laplacian,
                const std::vector<Var>& layers,
                const std::vector<std::vector<Var>>& augmented,
                const std::vector<const std::vector<int64_t>*>& correspondences,
                const GAlignConfig& cfg);

}  // namespace galign
