// Quickstart: align a network with a noisy permuted copy of itself using
// GAlign, fully unsupervised, and score the result against the known
// ground truth.
//
//   $ ./quickstart
//
// Walks through the three core API calls: build graphs, construct a
// GAlignAligner, read metrics off the alignment matrix.
#include <cstdio>

#include "align/metrics.h"
#include "core/galign.h"
#include "graph/generators.h"
#include "graph/noise.h"

using namespace galign;

int main() {
  // 1. Build an attributed network: 200 users, power-law friendships, and a
  //    12-dimensional binary profile per user.
  Rng rng(42);
  auto graph_result = BarabasiAlbert(200, 3, &rng);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 1;
  }
  AttributedGraph network = graph_result.MoveValueOrDie()
                                .WithAttributes(BinaryAttributes(
                                    200, 12, 0.25, &rng))
                                .MoveValueOrDie();

  // 2. Make the alignment task: the "other platform" is a randomly permuted
  //    copy with 10% structural noise and 10% attribute noise.
  NoisyCopyOptions noise;
  noise.structural_noise = 0.10;
  noise.attribute_noise = 0.10;
  AlignmentPair pair =
      MakeNoisyCopyPair(network, noise, &rng).MoveValueOrDie();

  std::printf("source: %lld nodes, %lld edges | target: %lld nodes, %lld edges\n",
              (long long)pair.source.num_nodes(),
              (long long)pair.source.num_edges(),
              (long long)pair.target.num_nodes(),
              (long long)pair.target.num_edges());

  // 3. Align. GAlign needs no anchor seeds - pass empty supervision.
  GAlignConfig config;
  config.epochs = 30;
  config.embedding_dim = 64;
  config.refinement_iterations = 10;
  GAlignAligner aligner(config);
  auto alignment = aligner.Align(pair.source, pair.target, /*supervision=*/{});
  if (!alignment.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 alignment.status().ToString().c_str());
    return 1;
  }

  // 4. Score against ground truth.
  AlignmentMetrics metrics =
      ComputeMetrics(alignment.ValueOrDie(), pair.ground_truth);
  std::printf("GAlign (unsupervised): %s\n", metrics.ToString().c_str());

  // 5. Extract hard anchor links with the greedy 1-1 matcher.
  auto anchors = GreedyOneToOneAnchors(alignment.ValueOrDie());
  int64_t correct = 0;
  for (size_t v = 0; v < anchors.size(); ++v) {
    if (anchors[v] == pair.ground_truth[v]) ++correct;
  }
  std::printf("greedy 1-1 matching: %lld/%lld exact anchor links\n",
              (long long)correct, (long long)anchors.size());
  return 0;
}
