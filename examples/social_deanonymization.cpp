// Social-network account linking (the paper's motivating application §I):
// a Douban-like scenario where a large "online" network must be aligned
// with a much smaller "offline" network of the same community — size
// imbalance, sparse structure, rich binary profiles.
//
// Compares the unsupervised GAlign against the supervised baselines
// (FINAL, IsoRank, PALE get 10% of the true anchors) and the unsupervised
// REGAL, reproducing the Table III protocol at example scale.
#include <cstdio>

#include "align/bootstrap.h"
#include "align/datasets.h"
#include "align/pipeline.h"
#include "baselines/final.h"
#include "baselines/isorank.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "core/galign.h"
#include "graph/stats.h"

using namespace galign;

int main() {
  // Douban-like pair at 1/6 scale: ~650 online users, ~190 offline, every
  // offline user has an online counterpart.
  DatasetSpec spec = DoubanSpec().Scaled(6.0);
  Rng rng(7);
  auto pair_result = SynthesizePair(spec, &rng);
  if (!pair_result.ok()) {
    std::fprintf(stderr, "%s\n", pair_result.status().ToString().c_str());
    return 1;
  }
  AlignmentPair pair = pair_result.MoveValueOrDie();

  std::printf("online  network: %s\n",
              StatsToString(ComputeStats(pair.source)).c_str());
  std::printf("offline network: %s\n",
              StatsToString(ComputeStats(pair.target)).c_str());
  std::printf("anchor links: %lld\n\n", (long long)pair.NumAnchors());

  GAlignConfig cfg;
  cfg.epochs = 30;
  cfg.embedding_dim = 100;
  cfg.refinement_iterations = 10;
  GAlignAligner galign_aligner(cfg);
  FinalAligner final_aligner;
  IsoRankAligner isorank_aligner;
  RegalAligner regal_aligner;
  PaleConfig pale_cfg;
  pale_cfg.embedding_epochs = 80;
  PaleAligner pale_aligner(pale_cfg);

  std::vector<Aligner*> aligners{&galign_aligner, &final_aligner,
                                 &isorank_aligner, &regal_aligner,
                                 &pale_aligner};
  auto results = RunAll(aligners, pair, /*seed_fraction=*/0.1, &rng);

  TextTable table({"Method", "MAP", "AUC", "S@1", "S@10", "Time(s)"});
  for (const RunResult& r : results) {
    if (!r.status.ok()) {
      table.AddRow({r.method, "failed: " + r.status.ToString()});
      continue;
    }
    table.AddRow({r.method, TextTable::Num(r.metrics.map),
                  TextTable::Num(r.metrics.auc),
                  TextTable::Num(r.metrics.success_at_1),
                  TextTable::Num(r.metrics.success_at_10),
                  TextTable::Num(r.metrics.seconds, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "note: FINAL/IsoRank/PALE consume 10%% seed anchors; GAlign and REGAL "
      "are fully unsupervised.\n");

  // How solid is the GAlign number? Bootstrap the anchor set.
  auto s = galign_aligner.Align(pair.source, pair.target, {});
  if (s.ok()) {
    auto ci = BootstrapEvaluate(s.ValueOrDie(), pair.ground_truth, 1000);
    if (ci.ok()) {
      std::printf("GAlign bootstrap (90%% CI): %s\n",
                  ci.ValueOrDie().ToString().c_str());
    }
  }
  return 0;
}
