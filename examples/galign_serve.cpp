// Alignment serving daemon over the immutable AlignmentIndex artifact
// (DESIGN.md §12-13). Five modes:
//
//   --mode=export   Train and durably publish an artifact generation.
//                   Input: --source/--target edge lists (+ optional attrs),
//                   or --generate=N for a synthetic noisy-copy pair (smoke
//                   tests, demos). Writes into --artifact-dir.
//
//   --mode=serve    Load the newest valid artifact generation and answer
//                   "query <node> [k]" lines from stdin until EOF/"quit".
//                   Every line gets exactly one typed reply: a full answer,
//                   a degraded answer (marked), or a typed rejection. An
//                   ArtifactWatcher hot-swaps newly exported generations in
//                   behind the queries (--no-watch disables); "health"
//                   prints the swap/quarantine surface.
//
//   --mode=health   Offline readiness probe: run the quarantine validation
//                   battery (fingerprint probe replay, anchor spot check,
//                   smoke query) against every generation on disk and print
//                   a per-generation verdict. Exit 0 iff something is
//                   servable.
//
//   --mode=burst    In-process overload drill: hammer the server with
//                   --load-multiple times its queue capacity from
//                   --clients threads, then print admission/shed/latency
//                   stats. Exit code 0 iff the serving contract held: every
//                   request resolved with a typed response (OK, Overloaded,
//                   or DeadlineExceeded), no hang, no crash.
//
//   --mode=chaos    Hot-swap chaos drill: under continuous burst load,
//                   publish good / torn / bit-flipped / fingerprint-tampered
//                   / killed-mid-write generations into the live watcher and
//                   assert the §13 invariant — every response typed and
//                   correct for the generation that answered it, every bad
//                   generation quarantined with the right typed reason, the
//                   server ends on the newest good generation.
//
// Usage:
//   galign_serve --mode=export --artifact-dir=/tmp/aidx --generate=120
//   galign_serve --mode=serve  --artifact-dir=/tmp/aidx
//   galign_serve --mode=burst  --artifact-dir=/tmp/aidx --load-multiple=16
//   galign_serve --mode=chaos  --artifact-dir=/tmp/aidx --rounds=2
//
// Serving flags: [--workers=2] [--queue-capacity=64] [--deadline-ms=250]
//   [--mem-budget=512m] [--topk=10] [--retry] [--clients=4]
//   [--load-multiple=4] [--poll-ms=50] [--no-watch] [--rounds=2]
// Export flags: [--epochs=30] [--dim=128] [--anchor-k=10]
//   [--ann-backend=lsh|hnsw] [--ann-recall-target=0.98]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/durable_io.h"
#include "common/flag_validate.h"
#include "common/timer.h"
#include "core/galign.h"
#include "graph/ann/ann.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/noise.h"
#include "serve/alignment_index.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/swap/swap.h"

using namespace galign;

namespace {

struct ServeCliOptions {
  std::string mode = "serve";
  std::string artifact_dir;
  std::string source, target, source_attrs, target_attrs;
  int64_t generate = 0;  ///< synthetic pair size (export mode), 0 = off
  int epochs = 30;
  int64_t dim = 128;
  int64_t anchor_k = 10;
  AnnConfig ann;
  double ann_recall_target = 0.98;
  int64_t topk = 10;
  uint64_t mem_budget = 0;
  bool retry = false;  ///< serve mode: retry sheds with backoff
  bool watch = true;   ///< serve mode: hot-swap watcher on by default
  double poll_ms = 50.0;
  ServeConfig serve;
  // Burst / chaos modes.
  int clients = 4;
  int64_t load_multiple = 4;
  int rounds = 2;  ///< chaos: publish cycles through the corruption kinds
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: galign_serve --mode=export|serve|health|burst|chaos"
      " --artifact-dir=<dir>\n"
      "  export: --source=<edges> --target=<edges> [--source-attrs=<tsv>]\n"
      "          [--target-attrs=<tsv>] | --generate=<n>\n"
      "          [--epochs=30] [--dim=128] [--anchor-k=10]\n"
      "          [--ann-backend=lsh|hnsw] [--ann-recall-target=0.98]\n"
      "  serve:  [--workers=2] [--queue-capacity=64] [--deadline-ms=250]\n"
      "          [--mem-budget=512m] [--topk=10] [--retry] [--poll-ms=50]\n"
      "          [--no-watch]\n"
      "  health: validate every generation on disk, print verdicts\n"
      "  burst:  serve flags plus [--clients=4] [--load-multiple=4]\n"
      "  chaos:  burst flags plus [--rounds=2]\n");
  return 2;
}

Result<AttributedGraph> LoadNetwork(const std::string& edges,
                                    const std::string& attrs) {
  auto g = LoadEdgeList(edges);
  GALIGN_RETURN_NOT_OK(g.status());
  if (attrs.empty()) return g;
  auto f = LoadAttributes(attrs);
  GALIGN_RETURN_NOT_OK(f.status());
  return g.ValueOrDie().WithAttributes(f.MoveValueOrDie());
}

int RunExport(const ServeCliOptions& opt) {
  AttributedGraph source, target;
  if (opt.generate > 0) {
    // Synthetic noisy-copy fixture: enough to smoke-test the full
    // export → load → serve loop without real data.
    Rng rng(7);
    auto g = BarabasiAlbert(opt.generate, 3, &rng);
    if (!g.ok()) {
      std::fprintf(stderr, "generate: %s\n", g.status().ToString().c_str());
      return 1;
    }
    auto attributed = g.ValueOrDie().WithAttributes(
        BinaryAttributes(opt.generate, 8, 0.3, &rng));
    if (!attributed.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   attributed.status().ToString().c_str());
      return 1;
    }
    NoisyCopyOptions noise;
    noise.structural_noise = 0.05;
    auto pair = MakeNoisyCopyPair(attributed.ValueOrDie(), noise, &rng);
    if (!pair.ok()) {
      std::fprintf(stderr, "generate: %s\n", pair.status().ToString().c_str());
      return 1;
    }
    source = std::move(pair.ValueOrDie().source);
    target = std::move(pair.ValueOrDie().target);
  } else {
    if (opt.source.empty() || opt.target.empty()) return Usage();
    auto s = LoadNetwork(opt.source, opt.source_attrs);
    if (!s.ok()) {
      std::fprintf(stderr, "source: %s\n", s.status().ToString().c_str());
      return 1;
    }
    auto t = LoadNetwork(opt.target, opt.target_attrs);
    if (!t.ok()) {
      std::fprintf(stderr, "target: %s\n", t.status().ToString().c_str());
      return 1;
    }
    source = std::move(s.ValueOrDie());
    target = std::move(t.ValueOrDie());
  }

  GAlignConfig config;
  config.epochs = opt.epochs;
  config.embedding_dim = opt.dim;
  AlignmentIndexOptions options;
  options.anchor_k = opt.anchor_k;
  AnnPolicy recall_policy;
  recall_policy.config = opt.ann;
  recall_policy.recall_target = opt.ann_recall_target;
  options.ann = EffortScaledConfig(recall_policy);

  std::printf("training artifact over %lld x %lld nodes...\n",
              static_cast<long long>(source.num_nodes()),
              static_cast<long long>(target.num_nodes()));
  Timer timer;
  auto index = AlignmentIndex::Build(config, source, target, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    return 1;
  }
  AlignmentIndexStore store(opt.artifact_dir);
  if (Status saved = store.Save(*index.ValueOrDie()); !saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("published artifact generation under %s in %.1fs (%.1f MiB)\n",
              opt.artifact_dir.c_str(), timer.Seconds(),
              static_cast<double>(index.ValueOrDie()->MemoryBytes()) /
                  (1 << 20));
  return 0;
}

void PrintResponse(int64_t node, const QueryResponse& response) {
  if (!response.status.ok()) {
    std::printf("node %lld: %s (retry after %.0f ms)\n",
                static_cast<long long>(node),
                response.status.ToString().c_str(), response.retry_after_ms);
    return;
  }
  std::printf("node %lld [%s%s, gen %lld, %.2f ms]:",
              static_cast<long long>(node), response.answer_source.c_str(),
              response.degraded ? ", degraded" : "",
              static_cast<long long>(response.generation),
              response.latency_ms);
  for (size_t j = 0; j < response.targets.size(); ++j) {
    std::printf(" %lld:%.4f", static_cast<long long>(response.targets[j]),
                response.scores[j]);
  }
  std::printf("\n");
}

/// Generation encoded in an `aidx_<digits>` filename, or 0.
int GenerationOfName(const std::string& name) {
  const size_t digits = name.find_first_of("0123456789");
  if (digits == std::string::npos) return 0;
  return std::atoi(name.c_str() + digits);
}

int RunHealth(const ServeCliOptions& opt) {
  AlignmentIndexStore store(opt.artifact_dir);
  const std::vector<std::string> names = store.Candidates();
  if (names.empty()) {
    std::printf("no artifact generations under %s\n", opt.artifact_dir.c_str());
    return 1;
  }
  SwapConfig config;
  config.budget = opt.serve.budget;
  int valid = 0, best = 0;
  for (const std::string& name : names) {
    const int gen = GenerationOfName(name);
    RunContext ctx;
    if (config.budget) ctx.SetBudget(config.budget);
    auto index = store.LoadGeneration(gen, ctx);
    if (!index.ok()) {
      std::printf("gen %d: REJECTED (load) — %s\n", gen,
                  index.status().ToString().c_str());
      continue;
    }
    const ValidationOutcome verdict =
        ValidateCandidate(*index.ValueOrDie(), config);
    if (!verdict.ok) {
      std::printf("gen %d: QUARANTINED (%s) — %s\n", gen,
                  QuarantineReasonName(verdict.reason), verdict.detail.c_str());
      continue;
    }
    std::printf("gen %d: OK (validated in %.2f ms, %.1f MiB)\n", gen,
                verdict.latency_ms,
                static_cast<double>(index.ValueOrDie()->MemoryBytes()) /
                    (1 << 20));
    ++valid;
    best = std::max(best, gen);
  }
  if (valid > 0) {
    std::printf("healthy: would serve generation %d\n", best);
    return 0;
  }
  std::printf("unhealthy: no generation passes validation\n");
  return 1;
}

int RunServe(const ServeCliOptions& opt,
             std::shared_ptr<const AlignmentIndex> index, int generation,
             AlignmentIndexStore* store) {
  AlignServer server(std::move(index), opt.serve, generation);
  server.Start();
  SwapConfig swap_config;
  swap_config.poll_interval_ms = opt.poll_ms;
  swap_config.budget = opt.serve.budget;
  std::unique_ptr<ArtifactWatcher> watcher;
  if (opt.watch) {
    watcher = std::make_unique<ArtifactWatcher>(&server, store, swap_config);
    watcher->Start();
  }
  std::printf(
      "serving %lld source nodes (generation %d%s); 'query <node> [k]', "
      "'health', or 'quit'\n",
      static_cast<long long>(server.index()->num_source()), generation,
      opt.watch ? ", hot-swap watcher on" : "");

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty()) continue;
    if (cmd == "quit") break;
    if (cmd == "health") {
      if (watcher) {
        std::printf("%s", FormatHealth(watcher->Health()).c_str());
      } else {
        std::printf("serving_generation: %lld (watcher off)\nqueue_depth: %lld\n",
                    static_cast<long long>(server.serving_generation()),
                    static_cast<long long>(server.queue_depth()));
      }
      continue;
    }
    if (cmd != "query") {
      std::printf("unknown command '%s' (query <node> [k] | health | quit)\n",
                  cmd.c_str());
      continue;
    }
    QueryRequest request;
    request.k = opt.topk;
    if (!(in >> request.node)) {
      std::printf("query needs a node id\n");
      continue;
    }
    in >> request.k;  // optional; keeps the default on failure
    const QueryResponse response =
        opt.retry ? QueryWithRetry(&server, request)
                  : server.SubmitAndWait(request);
    PrintResponse(request.node, response);
  }
  if (watcher) watcher->Stop();
  server.Shutdown();
  return 0;
}

int RunBurst(const ServeCliOptions& opt,
             std::shared_ptr<const AlignmentIndex> index, int generation) {
  AlignServer server(std::move(index), opt.serve, generation);
  server.Start();

  const int64_t total =
      std::max<int64_t>(1, opt.load_multiple * opt.serve.queue_capacity);
  const int clients = std::max(1, opt.clients);
  const int64_t n1 = server.index()->num_source();

  // Every thread counts its outcomes; any untyped status is a contract
  // violation.
  std::vector<int64_t> ok_count(clients, 0), overloaded(clients, 0),
      deadline(clients, 0), unexpected(clients, 0);
  std::vector<std::vector<double>> latencies(clients);
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Fire-then-collect: all of this client's requests hit admission
      // before any response is awaited, so the configured load multiple is
      // real concurrent pressure, not one-in-flight-per-client.
      std::vector<std::future<QueryResponse>> futures;
      for (int64_t i = c; i < total; i += clients) {
        QueryRequest request;
        request.node = i % n1;
        request.k = opt.topk;
        futures.push_back(server.Submit(request));
      }
      for (auto& future : futures) {
        const QueryResponse response = future.get();
        switch (response.status.code()) {
          case StatusCode::kOk:
            ++ok_count[c];
            latencies[c].push_back(response.latency_ms);
            break;
          case StatusCode::kOverloaded:
            ++overloaded[c];
            break;
          case StatusCode::kDeadlineExceeded:
            ++deadline[c];
            break;
          default:
            ++unexpected[c];
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.Seconds();
  server.Shutdown();

  int64_t answered = 0, shed = 0, missed = 0, bad = 0;
  std::vector<double> all_latencies;
  for (int c = 0; c < clients; ++c) {
    answered += ok_count[c];
    shed += overloaded[c];
    missed += deadline[c];
    bad += unexpected[c];
    all_latencies.insert(all_latencies.end(), latencies[c].begin(),
                         latencies[c].end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  auto pct = [&](double p) {
    if (all_latencies.empty()) return 0.0;
    const size_t i = std::min(
        all_latencies.size() - 1,
        static_cast<size_t>(p * static_cast<double>(all_latencies.size())));
    return all_latencies[i];
  };

  const ServerStats stats = server.Snapshot();
  std::printf("burst: %lld requests, %d clients, load %lldx capacity\n",
              static_cast<long long>(total), clients,
              static_cast<long long>(opt.load_multiple));
  std::printf(
      "answered %lld (full %llu, reduced-effort %llu, anchor %llu), "
      "shed %lld, deadline %lld, untyped %lld\n",
      static_cast<long long>(answered),
      static_cast<unsigned long long>(stats.completed_full),
      static_cast<unsigned long long>(stats.completed_reduced_effort),
      static_cast<unsigned long long>(stats.completed_anchor),
      static_cast<long long>(shed), static_cast<long long>(missed),
      static_cast<long long>(bad));
  std::printf("p50 %.2f ms, p99 %.2f ms, %.0f QPS answered\n", pct(0.50),
              pct(0.99), wall_s > 0 ? static_cast<double>(answered) / wall_s
                                    : 0.0);

  // Contract check: everything typed, everything resolved.
  if (bad != 0) {
    std::fprintf(stderr, "contract violated: %lld untyped responses\n",
                 static_cast<long long>(bad));
    return 1;
  }
  if (answered + shed + missed != total) {
    std::fprintf(stderr, "contract violated: %lld of %lld requests lost\n",
                 static_cast<long long>(total - answered - shed - missed),
                 static_cast<long long>(total));
    return 1;
  }
  return 0;
}

// ----------------------------------------------------------------------------
// Chaos drill (DESIGN.md §13 acceptance): corrupted publications under burst.

/// Flips `payload[pos]` to a different hex digit (stays parseable hex, so
/// the corruption survives tokenizing and must be caught semantically).
void FlipHexDigit(std::string* payload, size_t pos) {
  (*payload)[pos] = (*payload)[pos] == '7' ? '3' : '7';
}

/// A CRC-valid artifact whose anchor table no longer matches what its ANN
/// index answers: one hex digit of theta[0] flipped. Parse rebuilds the
/// query matrix from theta, so the stored anchors silently disagree — only
/// the quarantine anchor spot check can catch it.
std::string BitFlippedArtifact(const std::string& golden) {
  const size_t theta = golden.find("\ntheta ");
  if (theta == std::string::npos) return golden;
  const size_t after_count = golden.find(' ', theta + 7);
  if (after_count == std::string::npos) return golden;
  std::string tampered = golden;
  FlipHexDigit(&tampered, after_count + 1);
  return tampered;
}

/// A CRC-valid artifact whose recorded ANN behavioral fingerprint was
/// tampered: the recipe's `fingerprint <8-hex>` digit flipped in place, so
/// the rebuilt index can no longer prove it answers like the saved one.
std::string FingerprintTamperedArtifact(const std::string& golden) {
  const size_t fp = golden.find("fingerprint ");
  if (fp == std::string::npos) return golden;
  std::string tampered = golden;
  FlipHexDigit(&tampered, fp + std::strlen("fingerprint "));
  return tampered;
}

struct BadPublication {
  int gen = 0;
  const char* kind = "";
  QuarantineReason expected = QuarantineReason::kLoadFailed;
};

int RunChaos(const ServeCliOptions& opt,
             std::shared_ptr<const AlignmentIndex> index, int generation,
             AlignmentIndexStore* store) {
  const std::string golden = index->Serialize();
  const TopKAlignment& anchors = index->anchors();
  const int64_t n1 = index->num_source();
  const int64_t anchor_k = index->anchor_k();

  AlignServer server(index, opt.serve, generation);
  server.Start();
  SwapConfig swap_config;
  swap_config.poll_interval_ms = std::min(5.0, opt.poll_ms);
  swap_config.budget = opt.serve.budget;
  ArtifactWatcher watcher(&server, store, swap_config);
  watcher.Start();

  // Every good publication carries the golden payload, so any valid
  // generation must answer exactly like the anchors of the loaded index.
  std::mutex truth_mu;
  std::set<int64_t> valid_gens{generation};

  std::atomic<bool> done{false};
  std::atomic<int64_t> answered{0}, shed{0}, missed{0}, untyped{0},
      mismatched{0}, bad_generation{0};

  const int clients = std::max(1, opt.clients);
  const int64_t batch = std::max<int64_t>(
      1, opt.load_multiple * opt.serve.queue_capacity / clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      int64_t round = 0;
      while (!done.load(std::memory_order_relaxed)) {
        // Fire-then-collect, continuously: the swap must land under real
        // admission pressure, not between tidy waves.
        std::vector<std::future<QueryResponse>> futures;
        std::vector<int64_t> nodes;
        futures.reserve(static_cast<size_t>(batch));
        for (int64_t i = 0; i < batch; ++i) {
          QueryRequest request;
          request.node = (round * 131 + c * 17 + i) % n1;
          request.k = anchor_k;
          nodes.push_back(request.node);
          futures.push_back(server.Submit(request));
        }
        ++round;
        for (size_t i = 0; i < futures.size(); ++i) {
          const QueryResponse r = futures[i].get();
          switch (r.status.code()) {
            case StatusCode::kOk: {
              ++answered;
              {
                std::lock_guard<std::mutex> lock(truth_mu);
                if (valid_gens.count(r.generation) == 0) ++bad_generation;
              }
              // Full-effort ANN answers and anchor-table fallbacks are
              // bit-exact against the golden anchor row; reduced-effort
              // answers are the only approximate ones.
              if ((r.answer_source == "ann" && r.effort_step == 0) ||
                  r.answer_source == "anchor_table") {
                for (size_t j = 0; j < r.targets.size(); ++j) {
                  const size_t at =
                      static_cast<size_t>(nodes[i] * anchors.k) + j;
                  if (r.targets[j] != anchors.index[at] ||
                      r.scores[j] != anchors.score[at]) {
                    ++mismatched;
                    break;
                  }
                }
              }
              break;
            }
            case StatusCode::kOverloaded:
              ++shed;
              break;
            case StatusCode::kDeadlineExceeded:
              ++missed;
              break;
            default:
              ++untyped;
              break;
          }
        }
      }
    });
  }

  // The publisher: cycle through one good publication and four distinct
  // corruptions per round, driving a watcher pass after each so every bad
  // generation is provably *attempted* (the background thread races along
  // for extra pressure). Good generations are recorded as valid before the
  // file exists, so a client can never observe an unlisted generation.
  std::vector<BadPublication> bad_pubs;
  std::vector<int> good_gens;
  int publish_failures = 0;
  for (int r = 0; r < std::max(1, opt.rounds); ++r) {
    for (int kind = 0; kind < 5; ++kind) {
      const int gen = store->NewestGeneration() + 1;
      const std::string path = store->GenerationPath(gen);
      Status wrote = Status::OK();
      switch (kind) {
        case 0: {  // good: byte-identical to the serving artifact
          {
            std::lock_guard<std::mutex> lock(truth_mu);
            valid_gens.insert(gen);
          }
          wrote = AtomicWriteFile(path, AppendCrc32Trailer(golden));
          if (wrote.ok()) good_gens.push_back(gen);
          break;
        }
        case 1: {  // torn: CRC'd payload truncated to a third
          const std::string full = AppendCrc32Trailer(golden);
          wrote = AtomicWriteFile(path, full.substr(0, full.size() / 3));
          bad_pubs.push_back({gen, "torn", QuarantineReason::kLoadFailed});
          break;
        }
        case 2: {  // bit-flip: valid CRC, anchors disagree with the ANN
          wrote = AtomicWriteFile(
              path, AppendCrc32Trailer(BitFlippedArtifact(golden)));
          bad_pubs.push_back(
              {gen, "bit-flip", QuarantineReason::kAnchorMismatch});
          break;
        }
        case 3: {  // fingerprint-tampered: valid CRC, recipe lies
          wrote = AtomicWriteFile(
              path, AppendCrc32Trailer(FingerprintTamperedArtifact(golden)));
          bad_pubs.push_back({gen, "fingerprint-tampered",
                              QuarantineReason::kFingerprintMismatch});
          break;
        }
        case 4: {  // exporter killed mid-publish: non-atomic partial write
          std::ofstream raw(path, std::ios::trunc | std::ios::binary);
          raw.write(golden.data(),
                    static_cast<std::streamsize>(golden.size() / 2));
          bad_pubs.push_back(
              {gen, "killed-exporter", QuarantineReason::kLoadFailed});
          break;
        }
      }
      if (!wrote.ok()) {
        std::fprintf(stderr, "chaos publish gen %d: %s\n", gen,
                     wrote.ToString().c_str());
        ++publish_failures;
      }
      watcher.PollOnce();
    }
  }

  // Convergence: the server must end up on the newest good generation —
  // poisoned generations above it must not wedge the watcher.
  const int want = good_gens.empty() ? generation : good_gens.back();
  Timer wait;
  while (server.serving_generation() != want && wait.Seconds() < 30.0) {
    watcher.PollOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  done.store(true);
  for (std::thread& t : threads) t.join();
  watcher.Stop();
  const SwapHealth health = watcher.Health();
  server.Shutdown();

  std::printf("%s", FormatHealth(health).c_str());
  std::printf(
      "chaos: %zu published (%zu good, %zu bad), answered %lld, shed %lld, "
      "deadline %lld\n",
      good_gens.size() + bad_pubs.size(), good_gens.size(), bad_pubs.size(),
      static_cast<long long>(answered.load()),
      static_cast<long long>(shed.load()),
      static_cast<long long>(missed.load()));

  // The §13 invariant, as the exit code.
  int violations = publish_failures;
  if (untyped.load() != 0) {
    std::fprintf(stderr, "contract violated: %lld untyped responses\n",
                 static_cast<long long>(untyped.load()));
    ++violations;
  }
  if (mismatched.load() != 0) {
    std::fprintf(stderr,
                 "contract violated: %lld answers disagreed with their "
                 "generation's anchor table\n",
                 static_cast<long long>(mismatched.load()));
    ++violations;
  }
  if (bad_generation.load() != 0) {
    std::fprintf(stderr,
                 "contract violated: %lld responses stamped with a "
                 "generation that never passed validation\n",
                 static_cast<long long>(bad_generation.load()));
    ++violations;
  }
  if (server.serving_generation() != want) {
    std::fprintf(stderr,
                 "contract violated: serving generation %lld, newest good "
                 "is %d\n",
                 static_cast<long long>(server.serving_generation()), want);
    ++violations;
  }
  for (const BadPublication& bad : bad_pubs) {
    const QuarantineRecord* record = nullptr;
    for (const QuarantineRecord& q : health.quarantined) {
      if (q.generation == bad.gen) record = &q;
    }
    if (record == nullptr) {
      std::fprintf(stderr,
                   "contract violated: bad generation %d (%s) missing from "
                   "the quarantine list\n",
                   bad.gen, bad.kind);
      ++violations;
    } else if (record->reason != bad.expected) {
      std::fprintf(stderr,
                   "contract violated: generation %d (%s) quarantined as %s, "
                   "expected %s\n",
                   bad.gen, bad.kind, QuarantineReasonName(record->reason),
                   QuarantineReasonName(bad.expected));
      ++violations;
    }
  }
  if (health.swaps.size() != good_gens.size()) {
    std::fprintf(stderr,
                 "contract violated: %zu swaps recorded for %zu good "
                 "publications\n",
                 health.swaps.size(), good_gens.size());
    ++violations;
  }
  if (violations == 0) {
    std::printf("chaos drill passed: every response typed, every bad "
                "generation quarantined, serving generation %d\n",
                want);
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ServeCliOptions opt;
  std::string flag;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--mode", &opt.mode)) continue;
    if (ParseFlag(argv[i], "--artifact-dir", &opt.artifact_dir)) continue;
    if (ParseFlag(argv[i], "--source", &opt.source)) continue;
    if (ParseFlag(argv[i], "--target", &opt.target)) continue;
    if (ParseFlag(argv[i], "--source-attrs", &opt.source_attrs)) continue;
    if (ParseFlag(argv[i], "--target-attrs", &opt.target_attrs)) continue;
    if (std::strcmp(argv[i], "--retry") == 0) {
      opt.retry = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-watch") == 0) {
      opt.watch = false;
      continue;
    }
    if (std::strcmp(argv[i], "--health") == 0) {
      opt.mode = "health";
      continue;
    }
    if (ParseFlag(argv[i], "--poll-ms", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--poll-ms");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.poll_ms = static_cast<double>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--rounds", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--rounds");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.rounds = static_cast<int>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--generate", &flag)) {
      auto n = GALIGN_VALIDATE_POSITIVE_INT(flag, "--generate");
      if (!n.ok()) {
        std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
        return 2;
      }
      opt.generate = n.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--epochs", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--epochs");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.epochs = static_cast<int>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--dim", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--dim");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.dim = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--anchor-k", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--anchor-k");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.anchor_k = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--ann-backend", &flag)) {
      if (flag == "lsh") opt.ann.backend = AnnBackend::kLsh;
      else if (flag == "hnsw") opt.ann.backend = AnnBackend::kHnsw;
      else {
        std::fprintf(stderr, "bad --ann-backend value (lsh|hnsw): %s\n",
                     flag.c_str());
        return 2;
      }
      continue;
    }
    if (ParseFlag(argv[i], "--ann-recall-target", &flag)) {
      auto v = GALIGN_VALIDATE_UNIT_INTERVAL(flag, "--ann-recall-target");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.ann_recall_target = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--topk", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--topk");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.topk = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--mem-budget", &flag)) {
      auto v = GALIGN_VALIDATE_BYTE_SIZE(flag, "--mem-budget");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.mem_budget = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--workers", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--workers");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.serve.workers = static_cast<int>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--queue-capacity", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--queue-capacity");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.serve.queue_capacity = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--deadline-ms", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--deadline-ms");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.serve.default_deadline_ms = static_cast<double>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--clients", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--clients");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.clients = static_cast<int>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--load-multiple", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--load-multiple");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.load_multiple = v.ValueOrDie();
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }
  if (opt.artifact_dir.empty()) return Usage();

  if (opt.mem_budget > 0) {
    opt.serve.budget = std::make_shared<MemoryBudget>(opt.mem_budget);
  }

  if (opt.mode == "export") return RunExport(opt);
  if (opt.mode == "health") return RunHealth(opt);
  if (opt.mode != "serve" && opt.mode != "burst" && opt.mode != "chaos") {
    return Usage();
  }

  AlignmentIndexStore store(opt.artifact_dir);
  int generation = 0;
  auto index = store.LoadLatest(RunContext(), &generation);
  if (!index.ok()) {
    std::fprintf(stderr, "load: %s\n", index.status().ToString().c_str());
    return 1;
  }
  // Data-dependent bound: --topk cannot exceed the artifact's target side.
  if (Status bound = GALIGN_VALIDATE_TOPK_BOUND(
          opt.topk, index.ValueOrDie()->num_target(), "--topk");
      !bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.ToString().c_str());
    return 2;
  }
  if (opt.mode == "serve") {
    return RunServe(opt, std::move(index.ValueOrDie()), generation, &store);
  }
  if (opt.mode == "chaos") {
    return RunChaos(opt, std::move(index.ValueOrDie()), generation, &store);
  }
  return RunBurst(opt, std::move(index.ValueOrDie()), generation);
}
