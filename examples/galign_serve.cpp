// Alignment serving daemon over the immutable AlignmentIndex artifact
// (DESIGN.md §12). Three modes:
//
//   --mode=export   Train and durably publish an artifact generation.
//                   Input: --source/--target edge lists (+ optional attrs),
//                   or --generate=N for a synthetic noisy-copy pair (smoke
//                   tests, demos). Writes into --artifact-dir.
//
//   --mode=serve    Load the newest valid artifact generation and answer
//                   "query <node> [k]" lines from stdin until EOF/"quit".
//                   Every line gets exactly one typed reply: a full answer,
//                   a degraded answer (marked), or a typed rejection.
//
//   --mode=burst    In-process overload drill: hammer the server with
//                   --load-multiple times its queue capacity from
//                   --clients threads, then print admission/shed/latency
//                   stats. Exit code 0 iff the serving contract held: every
//                   request resolved with a typed response (OK, Overloaded,
//                   or DeadlineExceeded), no hang, no crash.
//
// Usage:
//   galign_serve --mode=export --artifact-dir=/tmp/aidx --generate=120
//   galign_serve --mode=serve  --artifact-dir=/tmp/aidx
//   galign_serve --mode=burst  --artifact-dir=/tmp/aidx --load-multiple=16
//
// Serving flags: [--workers=2] [--queue-capacity=64] [--deadline-ms=250]
//   [--mem-budget=512m] [--topk=10] [--retry] [--clients=4]
//   [--load-multiple=4]
// Export flags: [--epochs=30] [--dim=128] [--anchor-k=10]
//   [--ann-backend=lsh|hnsw] [--ann-recall-target=0.98]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flag_validate.h"
#include "common/timer.h"
#include "core/galign.h"
#include "graph/ann/ann.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/noise.h"
#include "serve/alignment_index.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace galign;

namespace {

struct ServeCliOptions {
  std::string mode = "serve";
  std::string artifact_dir;
  std::string source, target, source_attrs, target_attrs;
  int64_t generate = 0;  ///< synthetic pair size (export mode), 0 = off
  int epochs = 30;
  int64_t dim = 128;
  int64_t anchor_k = 10;
  AnnConfig ann;
  double ann_recall_target = 0.98;
  int64_t topk = 10;
  uint64_t mem_budget = 0;
  bool retry = false;  ///< serve mode: retry sheds with backoff
  ServeConfig serve;
  // Burst mode.
  int clients = 4;
  int64_t load_multiple = 4;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: galign_serve --mode=export|serve|burst --artifact-dir=<dir>\n"
      "  export: --source=<edges> --target=<edges> [--source-attrs=<tsv>]\n"
      "          [--target-attrs=<tsv>] | --generate=<n>\n"
      "          [--epochs=30] [--dim=128] [--anchor-k=10]\n"
      "          [--ann-backend=lsh|hnsw] [--ann-recall-target=0.98]\n"
      "  serve:  [--workers=2] [--queue-capacity=64] [--deadline-ms=250]\n"
      "          [--mem-budget=512m] [--topk=10] [--retry]\n"
      "  burst:  serve flags plus [--clients=4] [--load-multiple=4]\n");
  return 2;
}

Result<AttributedGraph> LoadNetwork(const std::string& edges,
                                    const std::string& attrs) {
  auto g = LoadEdgeList(edges);
  GALIGN_RETURN_NOT_OK(g.status());
  if (attrs.empty()) return g;
  auto f = LoadAttributes(attrs);
  GALIGN_RETURN_NOT_OK(f.status());
  return g.ValueOrDie().WithAttributes(f.MoveValueOrDie());
}

int RunExport(const ServeCliOptions& opt) {
  AttributedGraph source, target;
  if (opt.generate > 0) {
    // Synthetic noisy-copy fixture: enough to smoke-test the full
    // export → load → serve loop without real data.
    Rng rng(7);
    auto g = BarabasiAlbert(opt.generate, 3, &rng);
    if (!g.ok()) {
      std::fprintf(stderr, "generate: %s\n", g.status().ToString().c_str());
      return 1;
    }
    auto attributed = g.ValueOrDie().WithAttributes(
        BinaryAttributes(opt.generate, 8, 0.3, &rng));
    if (!attributed.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   attributed.status().ToString().c_str());
      return 1;
    }
    NoisyCopyOptions noise;
    noise.structural_noise = 0.05;
    auto pair = MakeNoisyCopyPair(attributed.ValueOrDie(), noise, &rng);
    if (!pair.ok()) {
      std::fprintf(stderr, "generate: %s\n", pair.status().ToString().c_str());
      return 1;
    }
    source = std::move(pair.ValueOrDie().source);
    target = std::move(pair.ValueOrDie().target);
  } else {
    if (opt.source.empty() || opt.target.empty()) return Usage();
    auto s = LoadNetwork(opt.source, opt.source_attrs);
    if (!s.ok()) {
      std::fprintf(stderr, "source: %s\n", s.status().ToString().c_str());
      return 1;
    }
    auto t = LoadNetwork(opt.target, opt.target_attrs);
    if (!t.ok()) {
      std::fprintf(stderr, "target: %s\n", t.status().ToString().c_str());
      return 1;
    }
    source = std::move(s.ValueOrDie());
    target = std::move(t.ValueOrDie());
  }

  GAlignConfig config;
  config.epochs = opt.epochs;
  config.embedding_dim = opt.dim;
  AlignmentIndexOptions options;
  options.anchor_k = opt.anchor_k;
  AnnPolicy recall_policy;
  recall_policy.config = opt.ann;
  recall_policy.recall_target = opt.ann_recall_target;
  options.ann = EffortScaledConfig(recall_policy);

  std::printf("training artifact over %lld x %lld nodes...\n",
              static_cast<long long>(source.num_nodes()),
              static_cast<long long>(target.num_nodes()));
  Timer timer;
  auto index = AlignmentIndex::Build(config, source, target, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    return 1;
  }
  AlignmentIndexStore store(opt.artifact_dir);
  if (Status saved = store.Save(*index.ValueOrDie()); !saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("published artifact generation under %s in %.1fs (%.1f MiB)\n",
              opt.artifact_dir.c_str(), timer.Seconds(),
              static_cast<double>(index.ValueOrDie()->MemoryBytes()) /
                  (1 << 20));
  return 0;
}

void PrintResponse(int64_t node, const QueryResponse& response) {
  if (!response.status.ok()) {
    std::printf("node %lld: %s (retry after %.0f ms)\n",
                static_cast<long long>(node),
                response.status.ToString().c_str(), response.retry_after_ms);
    return;
  }
  std::printf("node %lld [%s%s, %.2f ms]:",
              static_cast<long long>(node), response.answer_source.c_str(),
              response.degraded ? ", degraded" : "", response.latency_ms);
  for (size_t j = 0; j < response.targets.size(); ++j) {
    std::printf(" %lld:%.4f", static_cast<long long>(response.targets[j]),
                response.scores[j]);
  }
  std::printf("\n");
}

int RunServe(const ServeCliOptions& opt,
             std::shared_ptr<const AlignmentIndex> index) {
  AlignServer server(std::move(index), opt.serve);
  server.Start();
  std::printf("serving %lld source nodes; 'query <node> [k]' or 'quit'\n",
              static_cast<long long>(server.index().num_source()));

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty()) continue;
    if (cmd == "quit") break;
    if (cmd != "query") {
      std::printf("unknown command '%s' (query <node> [k] | quit)\n",
                  cmd.c_str());
      continue;
    }
    QueryRequest request;
    request.k = opt.topk;
    if (!(in >> request.node)) {
      std::printf("query needs a node id\n");
      continue;
    }
    in >> request.k;  // optional; keeps the default on failure
    const QueryResponse response =
        opt.retry ? QueryWithRetry(&server, request)
                  : server.SubmitAndWait(request);
    PrintResponse(request.node, response);
  }
  server.Shutdown();
  return 0;
}

int RunBurst(const ServeCliOptions& opt,
             std::shared_ptr<const AlignmentIndex> index) {
  AlignServer server(std::move(index), opt.serve);
  server.Start();

  const int64_t total =
      std::max<int64_t>(1, opt.load_multiple * opt.serve.queue_capacity);
  const int clients = std::max(1, opt.clients);
  const int64_t n1 = server.index().num_source();

  // Every thread counts its outcomes; any untyped status is a contract
  // violation.
  std::vector<int64_t> ok_count(clients, 0), overloaded(clients, 0),
      deadline(clients, 0), unexpected(clients, 0);
  std::vector<std::vector<double>> latencies(clients);
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Fire-then-collect: all of this client's requests hit admission
      // before any response is awaited, so the configured load multiple is
      // real concurrent pressure, not one-in-flight-per-client.
      std::vector<std::future<QueryResponse>> futures;
      for (int64_t i = c; i < total; i += clients) {
        QueryRequest request;
        request.node = i % n1;
        request.k = opt.topk;
        futures.push_back(server.Submit(request));
      }
      for (auto& future : futures) {
        const QueryResponse response = future.get();
        switch (response.status.code()) {
          case StatusCode::kOk:
            ++ok_count[c];
            latencies[c].push_back(response.latency_ms);
            break;
          case StatusCode::kOverloaded:
            ++overloaded[c];
            break;
          case StatusCode::kDeadlineExceeded:
            ++deadline[c];
            break;
          default:
            ++unexpected[c];
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.Seconds();
  server.Shutdown();

  int64_t answered = 0, shed = 0, missed = 0, bad = 0;
  std::vector<double> all_latencies;
  for (int c = 0; c < clients; ++c) {
    answered += ok_count[c];
    shed += overloaded[c];
    missed += deadline[c];
    bad += unexpected[c];
    all_latencies.insert(all_latencies.end(), latencies[c].begin(),
                         latencies[c].end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  auto pct = [&](double p) {
    if (all_latencies.empty()) return 0.0;
    const size_t i = std::min(
        all_latencies.size() - 1,
        static_cast<size_t>(p * static_cast<double>(all_latencies.size())));
    return all_latencies[i];
  };

  const ServerStats stats = server.Snapshot();
  std::printf("burst: %lld requests, %d clients, load %lldx capacity\n",
              static_cast<long long>(total), clients,
              static_cast<long long>(opt.load_multiple));
  std::printf(
      "answered %lld (full %llu, reduced-effort %llu, anchor %llu), "
      "shed %lld, deadline %lld, untyped %lld\n",
      static_cast<long long>(answered),
      static_cast<unsigned long long>(stats.completed_full),
      static_cast<unsigned long long>(stats.completed_reduced_effort),
      static_cast<unsigned long long>(stats.completed_anchor),
      static_cast<long long>(shed), static_cast<long long>(missed),
      static_cast<long long>(bad));
  std::printf("p50 %.2f ms, p99 %.2f ms, %.0f QPS answered\n", pct(0.50),
              pct(0.99), wall_s > 0 ? static_cast<double>(answered) / wall_s
                                    : 0.0);

  // Contract check: everything typed, everything resolved.
  if (bad != 0) {
    std::fprintf(stderr, "contract violated: %lld untyped responses\n",
                 static_cast<long long>(bad));
    return 1;
  }
  if (answered + shed + missed != total) {
    std::fprintf(stderr, "contract violated: %lld of %lld requests lost\n",
                 static_cast<long long>(total - answered - shed - missed),
                 static_cast<long long>(total));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeCliOptions opt;
  std::string flag;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--mode", &opt.mode)) continue;
    if (ParseFlag(argv[i], "--artifact-dir", &opt.artifact_dir)) continue;
    if (ParseFlag(argv[i], "--source", &opt.source)) continue;
    if (ParseFlag(argv[i], "--target", &opt.target)) continue;
    if (ParseFlag(argv[i], "--source-attrs", &opt.source_attrs)) continue;
    if (ParseFlag(argv[i], "--target-attrs", &opt.target_attrs)) continue;
    if (std::strcmp(argv[i], "--retry") == 0) {
      opt.retry = true;
      continue;
    }
    if (ParseFlag(argv[i], "--generate", &flag)) {
      auto n = GALIGN_VALIDATE_POSITIVE_INT(flag, "--generate");
      if (!n.ok()) {
        std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
        return 2;
      }
      opt.generate = n.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--epochs", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--epochs");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.epochs = static_cast<int>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--dim", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--dim");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.dim = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--anchor-k", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--anchor-k");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.anchor_k = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--ann-backend", &flag)) {
      if (flag == "lsh") opt.ann.backend = AnnBackend::kLsh;
      else if (flag == "hnsw") opt.ann.backend = AnnBackend::kHnsw;
      else {
        std::fprintf(stderr, "bad --ann-backend value (lsh|hnsw): %s\n",
                     flag.c_str());
        return 2;
      }
      continue;
    }
    if (ParseFlag(argv[i], "--ann-recall-target", &flag)) {
      auto v = GALIGN_VALIDATE_UNIT_INTERVAL(flag, "--ann-recall-target");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.ann_recall_target = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--topk", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--topk");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.topk = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--mem-budget", &flag)) {
      auto v = GALIGN_VALIDATE_BYTE_SIZE(flag, "--mem-budget");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.mem_budget = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--workers", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--workers");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.serve.workers = static_cast<int>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--queue-capacity", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--queue-capacity");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.serve.queue_capacity = v.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--deadline-ms", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--deadline-ms");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.serve.default_deadline_ms = static_cast<double>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--clients", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--clients");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.clients = static_cast<int>(v.ValueOrDie());
      continue;
    }
    if (ParseFlag(argv[i], "--load-multiple", &flag)) {
      auto v = GALIGN_VALIDATE_POSITIVE_INT(flag, "--load-multiple");
      if (!v.ok()) {
        std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
        return 2;
      }
      opt.load_multiple = v.ValueOrDie();
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }
  if (opt.artifact_dir.empty()) return Usage();

  if (opt.mem_budget > 0) {
    opt.serve.budget = std::make_shared<MemoryBudget>(opt.mem_budget);
  }

  if (opt.mode == "export") return RunExport(opt);
  if (opt.mode != "serve" && opt.mode != "burst") return Usage();

  AlignmentIndexStore store(opt.artifact_dir);
  auto index = store.LoadLatest();
  if (!index.ok()) {
    std::fprintf(stderr, "load: %s\n", index.status().ToString().c_str());
    return 1;
  }
  // Data-dependent bound: --topk cannot exceed the artifact's target side.
  if (Status bound = GALIGN_VALIDATE_TOPK_BOUND(
          opt.topk, index.ValueOrDie()->num_target(), "--topk");
      !bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.ToString().c_str());
    return 2;
  }
  return opt.mode == "serve" ? RunServe(opt, std::move(index.ValueOrDie()))
                             : RunBurst(opt, std::move(index.ValueOrDie()));
}
