// Knowledge-base reconciliation: align two movie databases (Allmovie/Imdb
// style) whose nodes are films connected when they share actors, with genre
// attributes. Demonstrates the diagnostics the library exposes: training
// loss trajectory, refinement score trajectory, and per-entity match
// inspection, plus a t-SNE dump of the multi-order embedding space (the
// paper's Fig. 8 qualitative study).
#include <algorithm>
#include <cstdio>

#include "align/datasets.h"
#include "align/metrics.h"
#include "core/galign.h"
#include "core/refinement.h"
#include "core/trainer.h"
#include "la/ops.h"
#include "manifold/tsne.h"

using namespace galign;

int main() {
  DatasetSpec spec = AllmovieImdbSpec().Scaled(12.0);
  Rng rng(11);
  auto pair_result = SynthesizePair(spec, &rng);
  if (!pair_result.ok()) {
    std::fprintf(stderr, "%s\n", pair_result.status().ToString().c_str());
    return 1;
  }
  AlignmentPair pair = pair_result.MoveValueOrDie();
  std::printf("catalogue A: %lld films / %lld co-actor edges\n",
              (long long)pair.source.num_nodes(),
              (long long)pair.source.num_edges());
  std::printf("catalogue B: %lld films / %lld co-actor edges\n\n",
              (long long)pair.target.num_nodes(),
              (long long)pair.target.num_edges());

  GAlignConfig cfg;
  cfg.epochs = 40;
  cfg.embedding_dim = 64;
  cfg.refinement_iterations = 10;
  GAlignAligner aligner(cfg);
  auto alignment = aligner.Align(pair.source, pair.target, {});
  if (!alignment.ok()) {
    std::fprintf(stderr, "%s\n", alignment.status().ToString().c_str());
    return 1;
  }

  // Diagnostics: convergence of Alg. 1 and the greedy search of Alg. 2.
  const auto& loss = aligner.last_loss_history();
  std::printf("training loss: first=%.4f mid=%.4f last=%.4f\n", loss.front(),
              loss[loss.size() / 2], loss.back());
  const auto& scores = aligner.last_refinement_scores();
  std::printf("refinement g(S): init=%.2f best=%.2f (iterations=%zu)\n",
              scores.front(),
              *std::max_element(scores.begin(), scores.end()),
              scores.size() - 1);

  AlignmentMetrics m = ComputeMetrics(alignment.ValueOrDie(), pair.ground_truth);
  std::printf("quality: %s\n\n", m.ToString().c_str());

  // Inspect the five most confident matches.
  const Matrix& s = alignment.ValueOrDie();
  std::vector<std::pair<double, int64_t>> confident;
  for (int64_t v = 0; v < s.rows(); ++v) {
    confident.emplace_back(MaxRow(s, v), v);
  }
  std::sort(confident.rbegin(), confident.rend());
  std::printf("top-5 most confident film matches:\n");
  for (int i = 0; i < 5 && i < (int)confident.size(); ++i) {
    int64_t v = confident[i].second;
    int64_t u = ArgMaxRow(s, v);
    bool correct = pair.ground_truth[v] == u;
    std::printf("  film_%lld -> film_%lld (score %.3f) %s\n", (long long)v,
                (long long)u, confident[i].first,
                correct ? "[correct]" : "[wrong]");
  }

  // Qualitative study on a 10-film toy subset (paper Fig. 8): project the
  // concatenated multi-order embeddings of the matched pairs with t-SNE.
  Rng toy_rng(3);
  MultiOrderGcn gcn(cfg.num_layers, pair.source.num_attributes(),
                    cfg.embedding_dim, &toy_rng);
  Trainer trainer(cfg);
  trainer.Train(&gcn, pair.source, pair.target, &toy_rng).CheckOK();
  auto lap_s = pair.source.NormalizedAdjacency().MoveValueOrDie();
  auto lap_t = pair.target.NormalizedAdjacency().MoveValueOrDie();
  auto hs = gcn.ForwardInference(lap_s, pair.source.attributes());
  auto ht = gcn.ForwardInference(lap_t, pair.target.attributes());
  Matrix multi_s = ConcatCols({&hs[0], &hs[1], &hs[2]});
  Matrix multi_t = ConcatCols({&ht[0], &ht[1], &ht[2]});

  std::vector<int64_t> toy;
  for (int64_t v = 0; v < pair.source.num_nodes() && toy.size() < 10; ++v) {
    if (pair.ground_truth[v] != -1) toy.push_back(v);
  }
  Matrix points(2 * (int64_t)toy.size(), multi_s.cols());
  for (size_t i = 0; i < toy.size(); ++i) {
    for (int64_t c = 0; c < multi_s.cols(); ++c) {
      points((int64_t)i, c) = multi_s(toy[i], c);
      points((int64_t)(toy.size() + i), c) =
          multi_t(pair.ground_truth[toy[i]], c);
    }
  }
  TsneConfig tsne_cfg;
  tsne_cfg.iterations = 400;
  tsne_cfg.learning_rate = 20.0;
  auto projected = Tsne(points, tsne_cfg);
  if (projected.ok()) {
    std::printf("\nt-SNE of 10 film pairs (source vs matched target):\n");
    const Matrix& y = projected.ValueOrDie();
    for (size_t i = 0; i < toy.size(); ++i) {
      std::printf("  pair %2zu: A=(%7.2f, %7.2f)  B=(%7.2f, %7.2f)\n", i,
                  y((int64_t)i, 0), y((int64_t)i, 1),
                  y((int64_t)(toy.size() + i), 0),
                  y((int64_t)(toy.size() + i), 1));
    }
  }
  return 0;
}
