// Command-line network alignment tool: the adoption path for users with
// their own data. Reads edge lists (and optional TSV attributes) for two
// networks, runs any of the implemented methods, and writes anchor links
// and/or the full alignment matrix.
//
// Usage:
//   galign_cli --source=s.edges --target=t.edges
//              [--source-attrs=s.tsv --target-attrs=t.tsv]
//              [--method=galign|final|isorank|regal|pale|cenalp|unialign|netalign|deeplink|ione]
//              [--seeds=seeds.txt]            # "source target" pairs
//              [--anchors-out=anchors.txt]    # greedy 1-1 anchor links
//              [--matrix-out=matrix.tsv]      # full alignment matrix
//              [--hungarian]                  # optimal 1-1 instead of greedy
//              [--epochs=30] [--dim=128]
//              [--mem-budget=512m]            # cap matrix memory (k/m/g)
//              [--topk=10]                    # k for the top-k path
//              [--ann=auto|on|off]            # sublinear candidate retrieval
//              [--ann-backend=lsh|hnsw]
//              [--ann-recall-target=0.98]
//
// With no --*-out flags, the top anchors are printed to stdout.
//
// --mem-budget holds the run to a byte budget (DESIGN.md §9): when the
// dense n1 x n2 alignment matrix does not fit, the tool degrades to the
// row-blocked top-k kernel and emits top-1 anchors instead of dying on
// bad_alloc (--matrix-out and --hungarian need the dense matrix and are
// unavailable in that mode).
//
// --ann controls the DESIGN.md §11 retrieval layer on the top-k path:
// "auto" (default) routes AlignTopK through the ANN index when both
// networks clear the size threshold, "on" forces it, "off" keeps the
// exact chunked scan. Only methods with an ANN route (galign, regal,
// degree, attrs) consult it; the dense Align path is always exact.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "align/alignment_io.h"
#include "common/durable_io.h"
#include "common/flag_validate.h"
#include "align/hungarian.h"
#include "baselines/cenalp.h"
#include "baselines/deeplink.h"
#include "baselines/final.h"
#include "baselines/ione.h"
#include "baselines/isorank.h"
#include "baselines/naive.h"
#include "baselines/netalign.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "core/galign.h"
#include "graph/ann/ann_index.h"
#include "graph/io.h"
#include "graph/stats.h"

using namespace galign;

namespace {

struct CliOptions {
  std::string source, target;
  std::string source_attrs, target_attrs;
  std::string method = "galign";
  std::string seeds_path;
  std::string anchors_out, matrix_out;
  bool hungarian = false;
  int epochs = 30;
  int64_t dim = 128;
  uint64_t mem_budget = 0;  ///< 0 = unbounded
  int64_t topk = 10;        ///< k for the budget-degraded top-k path
  AnnPolicy ann;            ///< DESIGN.md §11 retrieval policy
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Result<AttributedGraph> LoadNetwork(const std::string& edges,
                                    const std::string& attrs) {
  auto g = LoadEdgeList(edges);
  GALIGN_RETURN_NOT_OK(g.status());
  if (attrs.empty()) return g;
  auto f = LoadAttributes(attrs);
  GALIGN_RETURN_NOT_OK(f.status());
  return g.ValueOrDie().WithAttributes(f.MoveValueOrDie());
}

std::unique_ptr<Aligner> MakeAligner(const CliOptions& opt) {
  if (opt.method == "galign") {
    GAlignConfig cfg;
    cfg.epochs = opt.epochs;
    cfg.embedding_dim = opt.dim;
    return std::make_unique<GAlignAligner>(cfg);
  }
  if (opt.method == "final") return std::make_unique<FinalAligner>();
  if (opt.method == "isorank") return std::make_unique<IsoRankAligner>();
  if (opt.method == "regal") return std::make_unique<RegalAligner>();
  if (opt.method == "pale") return std::make_unique<PaleAligner>();
  if (opt.method == "cenalp") return std::make_unique<CenalpAligner>();
  if (opt.method == "unialign") return std::make_unique<UniAlignAligner>();
  if (opt.method == "netalign") return std::make_unique<NetAlignAligner>();
  if (opt.method == "deeplink") return std::make_unique<DeepLinkAligner>();
  if (opt.method == "ione") return std::make_unique<IoneAligner>();
  if (opt.method == "degree") return std::make_unique<DegreeRankAligner>();
  if (opt.method == "attrs") return std::make_unique<AttributeOnlyAligner>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  std::string flag;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--source", &opt.source)) continue;
    if (ParseFlag(argv[i], "--target", &opt.target)) continue;
    if (ParseFlag(argv[i], "--source-attrs", &opt.source_attrs)) continue;
    if (ParseFlag(argv[i], "--target-attrs", &opt.target_attrs)) continue;
    if (ParseFlag(argv[i], "--method", &opt.method)) continue;
    if (ParseFlag(argv[i], "--seeds", &opt.seeds_path)) continue;
    if (ParseFlag(argv[i], "--anchors-out", &opt.anchors_out)) continue;
    if (ParseFlag(argv[i], "--matrix-out", &opt.matrix_out)) continue;
    if (std::strcmp(argv[i], "--hungarian") == 0) {
      opt.hungarian = true;
      continue;
    }
    if (ParseFlag(argv[i], "--epochs", &flag)) {
      opt.epochs = std::atoi(flag.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "--dim", &flag)) {
      opt.dim = std::atoll(flag.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "--mem-budget", &flag)) {
      auto bytes = GALIGN_VALIDATE_BYTE_SIZE(flag, "--mem-budget");
      if (!bytes.ok()) {
        std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
        return 2;
      }
      opt.mem_budget = bytes.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--topk", &flag)) {
      auto k = GALIGN_VALIDATE_POSITIVE_INT(flag, "--topk");
      if (!k.ok()) {
        std::fprintf(stderr, "%s\n", k.status().ToString().c_str());
        return 2;
      }
      opt.topk = k.ValueOrDie();
      continue;
    }
    if (ParseFlag(argv[i], "--ann", &flag)) {
      if (flag == "auto") opt.ann.mode = AnnMode::kAuto;
      else if (flag == "on") opt.ann.mode = AnnMode::kOn;
      else if (flag == "off") opt.ann.mode = AnnMode::kOff;
      else {
        std::fprintf(stderr, "bad --ann value (auto|on|off): %s\n",
                     flag.c_str());
        return 2;
      }
      continue;
    }
    if (ParseFlag(argv[i], "--ann-backend", &flag)) {
      if (flag == "lsh") opt.ann.config.backend = AnnBackend::kLsh;
      else if (flag == "hnsw") opt.ann.config.backend = AnnBackend::kHnsw;
      else {
        std::fprintf(stderr, "bad --ann-backend value (lsh|hnsw): %s\n",
                     flag.c_str());
        return 2;
      }
      continue;
    }
    if (ParseFlag(argv[i], "--ann-recall-target", &flag)) {
      auto target = GALIGN_VALIDATE_UNIT_INTERVAL(flag, "--ann-recall-target");
      if (!target.ok()) {
        std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
        return 2;
      }
      opt.ann.recall_target = target.ValueOrDie();
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }
  if (opt.source.empty() || opt.target.empty()) {
    std::fprintf(stderr,
                 "usage: galign_cli --source=<edges> --target=<edges> "
                 "[--method=galign|final|isorank|regal|pale|cenalp|unialign|netalign|deeplink|ione|degree|attrs] "
                 "[--source-attrs=<tsv>] [--target-attrs=<tsv>] "
                 "[--seeds=<pairs>] [--anchors-out=<file>] "
                 "[--matrix-out=<file>] [--hungarian] [--mem-budget=512m] "
                 "[--topk=10] [--ann=auto|on|off] [--ann-backend=lsh|hnsw] "
                 "[--ann-recall-target=0.98]\n");
    return 2;
  }

  auto src = LoadNetwork(opt.source, opt.source_attrs);
  if (!src.ok()) {
    std::fprintf(stderr, "source: %s\n", src.status().ToString().c_str());
    return 1;
  }
  auto tgt = LoadNetwork(opt.target, opt.target_attrs);
  if (!tgt.ok()) {
    std::fprintf(stderr, "target: %s\n", tgt.status().ToString().c_str());
    return 1;
  }
  std::printf("source: %s\n",
              StatsToString(ComputeStats(src.ValueOrDie())).c_str());
  std::printf("target: %s\n",
              StatsToString(ComputeStats(tgt.ValueOrDie())).c_str());
  // Data-dependent bound: only checkable once the target network's size is
  // known.
  if (Status bound = GALIGN_VALIDATE_TOPK_BOUND(
          opt.topk, tgt.ValueOrDie().num_nodes(), "--topk");
      !bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.ToString().c_str());
    return 2;
  }

  Supervision sup;
  if (!opt.seeds_path.empty()) {
    auto seeds = LoadGroundTruth(opt.seeds_path,
                                 src.ValueOrDie().num_nodes());
    if (!seeds.ok()) {
      std::fprintf(stderr, "seeds: %s\n", seeds.status().ToString().c_str());
      return 1;
    }
    for (size_t v = 0; v < seeds.ValueOrDie().size(); ++v) {
      if (seeds.ValueOrDie()[v] != -1) {
        sup.seeds.emplace_back(static_cast<int64_t>(v),
                               seeds.ValueOrDie()[v]);
      }
    }
    std::printf("loaded %zu seed anchors\n", sup.seeds.size());
  }

  auto aligner = MakeAligner(opt);
  if (!aligner) {
    std::fprintf(stderr, "unknown method: %s\n", opt.method.c_str());
    return 2;
  }
  aligner->set_ann_policy(opt.ann);
  std::printf("aligning with %s...\n", aligner->name().c_str());
  RunContext ctx = opt.mem_budget > 0
                       ? RunContext::WithMemoryBudget(opt.mem_budget)
                       : RunContext();

  // Top-k path: budget degradation (DESIGN.md §9) and the --ann=on route
  // (DESIGN.md §11) both answer per-row top-k instead of the dense matrix.
  auto run_chunked = [&](const char* reason) -> int {
    std::printf("%s; using the top-k path (k=%lld)\n", reason,
                (long long)opt.topk);
    if (opt.hungarian || !opt.matrix_out.empty()) {
      std::fprintf(stderr,
                   "--hungarian/--matrix-out need the dense matrix and are "
                   "unavailable on the top-k path\n");
      return 2;
    }
    auto topk = aligner->AlignTopK(src.ValueOrDie(), tgt.ValueOrDie(), sup,
                                   ctx, opt.topk);
    if (!topk.ok()) {
      std::fprintf(stderr, "alignment failed: %s\n",
                   topk.status().ToString().c_str());
      return 1;
    }
    const TopKAlignment& a = topk.ValueOrDie();
    std::printf("peak tracked matrix memory: %llu bytes\n",
                (unsigned long long)MemoryTracker::PeakBytes());
    if (!opt.anchors_out.empty()) {
      std::string text;
      for (int64_t v = 0; v < a.rows_computed; ++v) {
        int64_t t = a.Top1(v);
        if (t < 0) continue;
        text += std::to_string(v) + "\t" + std::to_string(t) + "\t" +
                std::to_string(a.score[v * a.k]) + "\n";
      }
      auto st = AtomicWriteFile(opt.anchors_out, text);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote top-1 anchors to %s\n", opt.anchors_out.c_str());
    } else {
      std::printf("top anchor links (source -> target, score):\n");
      int64_t shown = 0;
      for (int64_t v = 0; v < a.rows_computed && shown < 20; ++v) {
        int64_t t = a.Top1(v);
        if (t < 0) continue;
        std::printf("  %lld -> %lld  (%.4f)\n", (long long)v, (long long)t,
                    a.score[v * a.k]);
        ++shown;
      }
    }
    return 0;
  };

  if (opt.ann.mode == AnnMode::kOn) {
    return run_chunked("--ann=on requests index-routed retrieval");
  }
  if (opt.mem_budget > 0) {
    const uint64_t estimate = aligner->EstimatePeakBytes(
        src.ValueOrDie().num_nodes(), tgt.ValueOrDie().num_nodes(),
        src.ValueOrDie().attributes().cols());
    if (estimate > opt.mem_budget) {
      return run_chunked("dense run exceeds --mem-budget");
    }
  }
  auto s = aligner->Align(src.ValueOrDie(), tgt.ValueOrDie(), sup, ctx);
  if (!s.ok()) {
    if (opt.mem_budget > 0 &&
        s.status().code() == StatusCode::kResourceExhausted) {
      return run_chunked("dense run exhausted --mem-budget");
    }
    std::fprintf(stderr, "alignment failed: %s\n",
                 s.status().ToString().c_str());
    return 1;
  }

  std::vector<int64_t> anchors;
  if (opt.hungarian) {
    auto h = HungarianMatch(s.ValueOrDie());
    if (!h.ok()) {
      std::fprintf(stderr, "matching failed: %s\n",
                   h.status().ToString().c_str());
      return 1;
    }
    anchors = h.MoveValueOrDie();
  } else {
    anchors = GreedyOneToOneAnchors(s.ValueOrDie());
  }

  if (!opt.matrix_out.empty()) {
    auto st = SaveAlignmentMatrix(s.ValueOrDie(), opt.matrix_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote alignment matrix to %s\n", opt.matrix_out.c_str());
  }
  if (!opt.anchors_out.empty()) {
    auto st = SaveAnchors(s.ValueOrDie(), anchors, opt.anchors_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote anchors to %s\n", opt.anchors_out.c_str());
  }
  if (opt.anchors_out.empty() && opt.matrix_out.empty()) {
    std::printf("top anchor links (source -> target, score):\n");
    int64_t shown = 0;
    for (size_t v = 0; v < anchors.size() && shown < 20; ++v) {
      if (anchors[v] == -1) continue;
      std::printf("  %zu -> %lld  (%.4f)\n", v, (long long)anchors[v],
                  s.ValueOrDie()(static_cast<int64_t>(v), anchors[v]));
      ++shown;
    }
  }
  return 0;
}
