// Adaptivity demo (the paper's R2 requirement): sweep structural noise on
// an email-like network and watch how GAlign with and without its data
// augmentation (the GAlign-1 ablation) degrades. Shows the augmented model
// holding up better as consistency violations grow.
#include <cstdio>

#include "align/datasets.h"
#include "align/metrics.h"
#include "align/pipeline.h"
#include "core/galign.h"

using namespace galign;

int main() {
  Rng rng(13);
  auto base = MakeEmailLike(&rng, /*scale=*/4.0).MoveValueOrDie();
  std::printf("base network: %lld nodes, %lld edges\n\n",
              (long long)base.num_nodes(), (long long)base.num_edges());

  GAlignConfig cfg;
  cfg.epochs = 30;
  cfg.embedding_dim = 64;
  cfg.refinement_iterations = 6;

  TextTable table({"noise", "GAlign S@1", "GAlign MAP",
                   "no-augment S@1", "no-augment MAP"});
  for (double noise : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    Rng pair_rng(100 + static_cast<uint64_t>(noise * 100));
    NoisyCopyOptions opts;
    opts.structural_noise = noise;
    AlignmentPair pair =
        MakeNoisyCopyPair(base, opts, &pair_rng).MoveValueOrDie();

    GAlignAligner with_aug(cfg, "GAlign");
    GAlignAligner without_aug(GAlignAligner::WithoutAugmentation(cfg),
                              "GAlign-1");
    auto s1 = with_aug.Align(pair.source, pair.target, {});
    auto s2 = without_aug.Align(pair.source, pair.target, {});
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "alignment failed at noise %.1f\n", noise);
      return 1;
    }
    AlignmentMetrics m1 = ComputeMetrics(s1.ValueOrDie(), pair.ground_truth);
    AlignmentMetrics m2 = ComputeMetrics(s2.ValueOrDie(), pair.ground_truth);
    table.AddRow({TextTable::Num(noise, 1), TextTable::Num(m1.success_at_1),
                  TextTable::Num(m1.map), TextTable::Num(m2.success_at_1),
                  TextTable::Num(m2.map)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "expected shape: both degrade with noise; the augmented model "
      "degrades more slowly (paper Fig. 3 / Table IV).\n");
  return 0;
}
