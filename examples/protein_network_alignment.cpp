// Protein-protein interaction (PPI) network alignment — the bioinformatics
// application from the paper's introduction (cross-species gene
// prioritization). PPI edges carry interaction-confidence weights, so this
// example exercises the weighted-graph path: two "species" whose
// interactomes descend from a common ancestor network with divergence
// modeled as edge turnover + confidence jitter.
#include <cstdio>

#include "align/metrics.h"
#include "align/hungarian.h"
#include "core/galign.h"
#include "graph/generators.h"
#include "graph/stats.h"

using namespace galign;

namespace {

// Builds a weighted "interactome" by decorating a power-law topology with
// confidence weights in (0, 1].
AttributedGraph MakeInteractome(int64_t proteins, int64_t interactions,
                                Rng* rng) {
  auto topo = PowerLawGraph(proteins, interactions, 2.3, rng).MoveValueOrDie();
  std::vector<WeightedEdge> weighted;
  weighted.reserve(topo.edges().size());
  for (const auto& [u, v] : topo.edges()) {
    weighted.push_back({u, v, rng->Uniform(0.2, 1.0)});
  }
  // Attributes = coarse functional annotation (GO-term-like one-hot).
  Matrix go_terms = OneHotAttributes(proteins, 12, 1.2, rng);
  return AttributedGraph::CreateWeighted(proteins, std::move(weighted),
                                         std::move(go_terms))
      .MoveValueOrDie();
}

// "Species divergence": each edge survives with probability keep_rate (new
// edges appear to compensate), surviving confidences are jittered, and the
// node labels are shuffled.
struct Divergence {
  AttributedGraph network;
  std::vector<int64_t> orthologs;  // ancestor protein -> descendant protein
};

Divergence Diverge(const AttributedGraph& ancestor, double keep_rate,
                   Rng* rng) {
  std::vector<WeightedEdge> edges;
  int64_t dropped = 0;
  for (size_t i = 0; i < ancestor.edges().size(); ++i) {
    const auto& [u, v] = ancestor.edges()[i];
    if (rng->Bernoulli(keep_rate)) {
      double w = ancestor.EdgeWeight(u, v) * rng->Uniform(0.8, 1.25);
      edges.push_back({u, v, std::min(1.0, std::max(0.05, w))});
    } else {
      ++dropped;
    }
  }
  // Edge turnover: new interactions replace the lost ones.
  const int64_t n = ancestor.num_nodes();
  for (int64_t i = 0; i < dropped; ++i) {
    int64_t u = rng->UniformInt(n), v = rng->UniformInt(n);
    if (u != v) edges.push_back({u, v, rng->Uniform(0.2, 1.0)});
  }
  Matrix attrs = ancestor.attributes();
  auto network = AttributedGraph::CreateWeighted(n, std::move(edges),
                                                 std::move(attrs))
                     .MoveValueOrDie();
  std::vector<int64_t> perm = rng->Permutation(n);
  Divergence d;
  d.network = network.Permuted(perm).MoveValueOrDie();
  d.orthologs = perm;
  return d;
}

}  // namespace

int main() {
  Rng rng(99);
  AttributedGraph ancestor = MakeInteractome(300, 1200, &rng);
  std::printf("ancestral interactome: %s\n",
              StatsToString(ComputeStats(ancestor)).c_str());

  // Two species diverge independently from the ancestor.
  Divergence species_a = Diverge(ancestor, 0.92, &rng);
  Divergence species_b = Diverge(ancestor, 0.85, &rng);
  std::printf("species A: %s\n",
              StatsToString(ComputeStats(species_a.network)).c_str());
  std::printf("species B: %s\n\n",
              StatsToString(ComputeStats(species_b.network)).c_str());

  // Ground-truth orthology: ancestor protein p lives at species_a.orthologs[p]
  // in A and species_b.orthologs[p] in B.
  std::vector<int64_t> orthology(species_a.network.num_nodes(), -1);
  for (int64_t p = 0; p < ancestor.num_nodes(); ++p) {
    orthology[species_a.orthologs[p]] = species_b.orthologs[p];
  }

  GAlignConfig cfg;
  cfg.epochs = 40;
  cfg.embedding_dim = 64;
  cfg.refinement_iterations = 8;
  GAlignAligner aligner(cfg);
  auto s = aligner.Align(species_a.network, species_b.network, {});
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
    return 1;
  }

  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), orthology);
  std::printf("orthology detection (unsupervised): %s\n", m.ToString().c_str());

  // Optimal one-to-one ortholog table.
  auto matching = HungarianMatch(s.ValueOrDie());
  if (matching.ok()) {
    int64_t correct = 0;
    for (size_t p = 0; p < matching.ValueOrDie().size(); ++p) {
      if (matching.ValueOrDie()[p] == orthology[p]) ++correct;
    }
    std::printf("Hungarian ortholog table: %lld/%lld correct pairs\n",
                (long long)correct,
                (long long)matching.ValueOrDie().size());
  }
  return 0;
}
